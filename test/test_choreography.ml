(* Multi-party choreography model, the Fig. 4 evolution pipeline, and
   the decentralized consistency protocol. *)

module C = Chorev
module M = C.Choreography.Model
module Cons = C.Choreography.Consistency
module Ev = C.Choreography.Evolution
module Pr = C.Choreography.Protocol
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let procurement () = M.of_processes (List.map snd P.parties)

let ok_exn = function
  | Ok v -> v
  | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)

let evolve ?config t ~owner ~changed = ok_exn (Ev.run ?config t ~owner ~changed)

(* ------------------------------ model ------------------------------ *)

let test_model_basics () =
  let t = procurement () in
  Alcotest.(check (list string)) "parties" [ "A"; "B"; "L" ] (M.parties t);
  check_bool "member" true (M.member t "A" <> None);
  check_bool "unknown member" true (M.member t "X" = None);
  check_bool "interact A B" true (M.interact t "A" "B");
  check_bool "interact A L" true (M.interact t "A" "L");
  check_bool "B and L do not interact" false (M.interact t "B" "L");
  check_int "pairs" 2 (List.length (M.pairs t))

let test_model_duplicate_party_rejected () =
  check_bool "duplicate raises" true
    (try
       ignore (M.of_processes [ P.buyer_process; P.buyer_process ]);
       false
     with Invalid_argument _ -> true)

let test_model_update () =
  let t = procurement () in
  let t' = M.update t P.accounting_cancel in
  check_bool "public changed" false
    (C.Equiv.equal_language (M.public t "A") (M.public t' "A"));
  check_bool "others untouched" true
    (C.Equiv.equal_language (M.public t "B") (M.public t' "B"))

(* --------------------------- consistency --------------------------- *)

let test_consistency_all () =
  let t = procurement () in
  check_bool "consistent" true (Cons.consistent t);
  let verdicts = Cons.check_all t in
  check_int "two pairs checked" 2 (List.length verdicts);
  List.iter
    (fun v ->
      check_bool "pair consistent" true v.Cons.consistent;
      check_bool "witness exists" true (v.Cons.witness <> None))
    verdicts

let test_consistency_broken_by_uncontrolled_change () =
  (* applying the cancel change without propagation breaks B *)
  let t = M.update (procurement ()) P.accounting_cancel in
  check_bool "now inconsistent" false (Cons.consistent t);
  check_bool "A-B pair broken" false (ok_exn (Cons.consistent_pair t "A" "B"));
  check_bool "A-L pair fine" true (ok_exn (Cons.consistent_pair t "A" "L"))

let test_agreed_protocol () =
  let t = procurement () in
  let p = ok_exn (Cons.protocol t "A" "B") in
  check_bool "nonempty" true (C.Emptiness.is_nonempty p);
  check_bool "contains the happy conversation" true
    (C.Trace.accepts p
       (List.map C.Label.of_string_exn
          [ "B#A#orderOp"; "A#B#deliveryOp"; "B#A#terminateOp" ]));
  (* only bilateral labels *)
  check_bool "bilateral alphabet" true
    (List.for_all (C.Label.involves "B") (C.Afsa.alphabet p));
  (* after an uncontrolled variant change the protocol is empty *)
  let t' = M.update t P.accounting_cancel in
  check_bool "broken protocol empty" true
    (C.Emptiness.is_empty (ok_exn (Cons.protocol t' "A" "B")))

(* ---------------------------- evolution ---------------------------- *)

let test_evolution_additive () =
  let t = procurement () in
  let rep = evolve t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "consistent after" true rep.Ev.consistent;
  let r0 = List.hd rep.Ev.rounds in
  check_bool "public changed" true r0.Ev.public_changed;
  check_int "two partners" 2 (List.length r0.Ev.partners);
  let b = List.find (fun p -> p.Ev.partner = "B") r0.Ev.partners in
  check_bool "B variant" true
    (C.Change.Classify.requires_propagation b.Ev.verdict);
  let l = List.find (fun p -> p.Ev.partner = "L") r0.Ev.partners in
  check_bool "L invariant" false
    (C.Change.Classify.requires_propagation l.Ev.verdict);
  (* evolved buyer equals fig 14 up to language *)
  check_bool "B adapted to fig14" true
    (C.Equiv.equal_language
       (M.public rep.Ev.choreography "B")
       (C.Public_gen.public P.buyer_with_cancel))

let test_evolution_subtractive () =
  let t = procurement () in
  let rep = evolve t ~owner:"A" ~changed:P.accounting_once in
  check_bool "consistent after" true rep.Ev.consistent;
  check_bool "B adapted to fig18" true
    (C.Equiv.equal_language
       (M.public rep.Ev.choreography "B")
       (C.Public_gen.public P.buyer_once))

let test_evolution_local_change_stops_early () =
  let t = procurement () in
  let changed =
    C.Change.Ops.apply_exn
      (C.Change.Ops.Insert_activity
         { path = []; pos = 0; act = C.Bpel.Activity.Assign "log" })
      P.accounting_process
  in
  let rep = evolve t ~owner:"A" ~changed in
  check_int "one round" 1 (List.length rep.Ev.rounds);
  check_bool "no public change" false (List.hd rep.Ev.rounds).Ev.public_changed;
  check_bool "still consistent" true rep.Ev.consistent

let test_evolution_no_auto_apply () =
  let t = procurement () in
  let rep =
    evolve
      ~config:{ Ev.default with Ev.auto_apply = false }
      t ~owner:"A" ~changed:P.accounting_cancel
  in
  (* without adaptation the choreography stays inconsistent *)
  check_bool "inconsistent" false rep.Ev.consistent;
  let r0 = List.hd rep.Ev.rounds in
  let b = List.find (fun p -> p.Ev.partner = "B") r0.Ev.partners in
  check_bool "suggestions available" true
    (match b.Ev.outcome with
    | Some o -> o.C.Propagate.Engine.analysis.C.Propagate.Engine.suggestions <> []
    | None -> false)

let test_dry_run () =
  let t = procurement () in
  (* variant change: B flagged with suggestions, nothing applied *)
  let reports = ok_exn (Ev.dry_run t ~owner:"A" ~changed:P.accounting_cancel) in
  check_int "two partners" 2 (List.length reports);
  let b = List.find (fun r -> r.Ev.partner = "B") reports in
  check_bool "B variant" true (C.Change.Classify.requires_propagation b.Ev.verdict);
  (match b.Ev.outcome with
  | Some o ->
      check_bool "suggestions present" true
        (o.C.Propagate.Engine.analysis.C.Propagate.Engine.suggestions <> []);
      check_bool "nothing applied" true (o.C.Propagate.Engine.adapted = None)
  | None -> Alcotest.fail "expected analysis");
  (* the choreography itself is untouched *)
  check_bool "still consistent" true (Cons.consistent t);
  (* local change: empty report *)
  let local =
    C.Change.Ops.apply_exn
      (C.Change.Ops.Insert_activity
         { path = []; pos = 0; act = C.Bpel.Activity.Assign "x" })
      P.accounting_process
  in
  check_int "local change: no reports" 0
    (List.length (ok_exn (Ev.dry_run t ~owner:"A" ~changed:local)))

let test_run_op () =
  let t = procurement () in
  match
    Ev.run_op t ~owner:"B"
      (C.Change.Ops.Insert_activity
         { path = []; pos = 0; act = C.Bpel.Activity.Assign "note" })
  with
  | Ok rep -> check_bool "consistent" true rep.Ev.consistent
  | Error (`Op e) -> Alcotest.fail e
  | Error (`Unknown_party p) -> Alcotest.fail ("unknown party " ^ p)

let test_unknown_party_total () =
  let t = procurement () in
  check_bool "find_party unknown" true
    (M.find_party t "X" = Error (`Unknown_party "X"));
  check_bool "find_party known" true
    (match M.find_party t "A" with Ok _ -> true | Error _ -> false);
  check_bool "run rejects unknown owner" true
    (match Ev.run t ~owner:"X" ~changed:P.accounting_cancel with
    | Error (`Unknown_party "X") -> true
    | _ -> false);
  check_bool "dry_run rejects unknown owner" true
    (match Ev.dry_run t ~owner:"X" ~changed:P.accounting_cancel with
    | Error (`Unknown_party "X") -> true
    | _ -> false);
  check_bool "run_op rejects unknown owner" true
    (match
       Ev.run_op t ~owner:"X"
         (C.Change.Ops.Insert_activity
            { path = []; pos = 0; act = C.Bpel.Activity.Assign "note" })
     with
    | Error (`Unknown_party "X") -> true
    | _ -> false);
  check_bool "check_pair rejects unknown party" true
    (match Cons.check_pair t "A" "X" with
    | Error (`Unknown_party "X") -> true
    | _ -> false);
  check_bool "protocol rejects unknown party" true
    (match Cons.protocol t "X" "B" with
    | Error (`Unknown_party "X") -> true
    | _ -> false)

(* The config-record entry points are the only API: one shared
   [Chorev.Config] record configures the engine and the pipeline, and
   unknown parties come back as typed errors, never exceptions. *)
let test_config_entry_points () =
  let t = procurement () in
  let config = { C.Config.default with max_rounds = 4 } in
  (match Ev.run ~config t ~owner:"A" ~changed:P.accounting_cancel with
  | Ok rep -> check_bool "run with config consistent" true rep.Ev.consistent
  | Error (`Unknown_party p) -> Alcotest.fail ("unknown party " ^ p));
  check_bool "run rejects unknown party" true
    (match Ev.run ~config t ~owner:"X" ~changed:P.accounting_cancel with
    | Error (`Unknown_party "X") -> true
    | _ -> false);
  let o =
    C.Propagate.Engine.run
      ~config:{ C.Config.default with auto_apply = true }
      ~direction:C.Propagate.Engine.Additive
      ~a':(C.Public_gen.public P.accounting_cancel)
      ~partner_private:P.buyer_process ()
  in
  check_bool "engine run with shared config adapted" true
    (Option.is_some o.C.Propagate.Engine.adapted)

(* ----------------------------- protocol ---------------------------- *)

let test_protocol_invariant_change () =
  let t = procurement () in
  let r = Pr.run t ~owner:"A" ~changed:P.accounting_order2 in
  check_bool "agreed" true r.Pr.agreed;
  check_bool "no nacks" true (r.Pr.stats.Pr.nacks = 0);
  check_bool "announcements to both partners" true
    (r.Pr.stats.Pr.announcements >= 2)

let test_protocol_variant_change () =
  let t = procurement () in
  let r = Pr.run t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "agreed after adaptation" true r.Pr.agreed;
  check_bool "at least one nack" true (r.Pr.stats.Pr.nacks >= 1);
  check_bool "final consistent" true
    (C.Choreography.Consistency.consistent r.Pr.final)

let test_protocol_no_adaptation () =
  let t = procurement () in
  let r = Pr.run ~adapt:false t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "no agreement" false r.Pr.agreed;
  check_bool "nacked" true (r.Pr.stats.Pr.nacks >= 1)

let test_protocol_message_economy () =
  (* only public processes travel; stats stay small for the scenario *)
  let t = procurement () in
  let r = Pr.run t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "bounded messages" true (r.Pr.stats.Pr.messages <= 20);
  check_bool "bounded rounds" true (r.Pr.stats.Pr.rounds <= 16)

let test_protocol_lonely_owner () =
  (* an owner with no interacting partners announces to nobody and
     trivially agrees *)
  let t = M.of_processes [ P.accounting_process ] in
  let r = Pr.run t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "agreed" true r.Pr.agreed;
  check_int "no messages" 0 r.Pr.stats.Pr.messages;
  check_int "no announcements" 0 r.Pr.stats.Pr.announcements;
  check_bool "change applied" false
    (C.Equiv.equal_language (M.public t "A") (M.public r.Pr.final "A"))

let test_protocol_no_adaptation_preserves_partner () =
  (* a nacking partner that refuses to adapt keeps its processes *)
  let t = procurement () in
  let r = Pr.run ~adapt:false t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "no agreement" false r.Pr.agreed;
  check_bool "B public untouched" true
    (C.Equiv.equal_language (M.public t "B") (M.public r.Pr.final "B"));
  check_bool "L still acks the invariant view" true (r.Pr.stats.Pr.acks >= 1);
  check_bool "owner change still applied" false
    (C.Equiv.equal_language (M.public t "A") (M.public r.Pr.final "A"))

let test_protocol_max_rounds_exhaustion () =
  let t = procurement () in
  (* zero rounds: announcements are queued but never processed *)
  let r0 = Pr.run ~max_rounds:0 t ~owner:"A" ~changed:P.accounting_cancel in
  check_int "rounds" 0 r0.Pr.stats.Pr.rounds;
  check_int "only the initial announcements" 2 r0.Pr.stats.Pr.announcements;
  check_int "no replies" 0 (r0.Pr.stats.Pr.acks + r0.Pr.stats.Pr.nacks);
  check_bool "not agreed" false r0.Pr.agreed;
  (* one round is enough for B's adaptation but cuts off the replies to
     its re-announcement *)
  let r1 = Pr.run ~max_rounds:1 t ~owner:"A" ~changed:P.accounting_cancel in
  check_int "one round" 1 r1.Pr.stats.Pr.rounds;
  check_bool "B adapted within the round" true r1.Pr.agreed;
  let full = Pr.run t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "cut short of the full exchange" true
    (r1.Pr.stats.Pr.messages < full.Pr.stats.Pr.messages)

let () =
  Alcotest.run "choreography"
    [
      ( "model",
        [
          Alcotest.test_case "basics" `Quick test_model_basics;
          Alcotest.test_case "duplicate party" `Quick
            test_model_duplicate_party_rejected;
          Alcotest.test_case "update" `Quick test_model_update;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "all pairs" `Quick test_consistency_all;
          Alcotest.test_case "uncontrolled change breaks" `Quick
            test_consistency_broken_by_uncontrolled_change;
          Alcotest.test_case "agreed protocol" `Quick test_agreed_protocol;
        ] );
      ( "evolution (Fig 4)",
        [
          Alcotest.test_case "additive cancel" `Quick test_evolution_additive;
          Alcotest.test_case "subtractive tracking" `Quick
            test_evolution_subtractive;
          Alcotest.test_case "local change stops early" `Quick
            test_evolution_local_change_stops_early;
          Alcotest.test_case "no auto-apply" `Quick test_evolution_no_auto_apply;
          Alcotest.test_case "run_op" `Quick test_run_op;
          Alcotest.test_case "unknown party is total" `Quick
            test_unknown_party_total;
          Alcotest.test_case "config entry points" `Quick
            test_config_entry_points;
          Alcotest.test_case "dry run" `Quick test_dry_run;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "invariant" `Quick test_protocol_invariant_change;
          Alcotest.test_case "variant" `Quick test_protocol_variant_change;
          Alcotest.test_case "no adaptation" `Quick test_protocol_no_adaptation;
          Alcotest.test_case "message economy" `Quick
            test_protocol_message_economy;
          Alcotest.test_case "lonely owner" `Quick test_protocol_lonely_owner;
          Alcotest.test_case "no adaptation preserves partner" `Quick
            test_protocol_no_adaptation_preserves_partner;
          Alcotest.test_case "max_rounds exhaustion" `Quick
            test_protocol_max_rounds_exhaustion;
        ] );
    ]
