(* Packed-vs-map differential suite (DESIGN.md §12): every kernel with
   a packed (CSR) implementation — determinize, ε-elimination, the
   product family behind intersect/difference/union, the emptiness
   fixpoint, completion, fingerprinting — must produce results
   STRUCTURALLY identical to the original map-shaped kernels, which
   stay available behind [CHOREV_NO_PACK] as the oracle mode. On top of
   the structural differentials, fuel-parity tests assert that both
   kernels tick budgets identically: the same [`Exceeded] trip points
   and the same [spent] at every fuel level, and identically across
   pool sizes 1/2/8. *)

module C = Chorev
module A = C.Afsa
module B = C.Guard.Budget
module W = C.Workload.Gen_afsa

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let n_seeds = 80

(* Cutoff 0 defeats the small-automaton dispatch heuristic: the suite's
   inputs are deliberately tiny, and the packed side must actually run
   the packed kernels for the differential to mean anything. *)
let with_packed f = A.Packed.with_enabled true (fun () -> A.Packed.with_cutoff 0 f)
let with_map f = A.Packed.with_enabled false f

(* Relabel every third proper edge to ε — the random generators emit
   proper edges only, and the ε CSR / closure paths need coverage. *)
let sprinkle_eps a =
  let edges =
    List.mapi
      (fun i (s, sym, t) -> if i mod 3 = 2 then (s, C.Sym.Eps, t) else (s, sym, t))
      (A.edges a)
  in
  A.make ~alphabet:(A.alphabet a) ~start:(A.start a) ~finals:(A.finals a)
    ~edges ~ann:(A.annotations a) ()

let random_inputs =
  lazy
    (List.concat_map
       (fun s ->
         let x = W.random ~seed:s ~states:6 ~ann_p:0.3 () in
         [ (s, x); (1000 + s, sprinkle_eps x) ])
       (List.init n_seeds Fun.id))

let protocol_inputs =
  lazy
    (List.map
       (fun s -> (s, W.random_protocol ~seed:s ~states:8 ()))
       (List.init n_seeds Fun.id))

let edge_inputs =
  let l n = C.Sym.L (C.Label.make ~sender:"A" ~receiver:"B" n) in
  [
    (0, A.make ~start:0 ~finals:[ 0 ] ~edges:[] ());
    (1, A.make ~start:0 ~finals:[] ~edges:[ (0, l "x", 1) ] ());
    (* ε-cycle through the start, ε into a final *)
    ( 2,
      A.make ~start:0 ~finals:[ 2 ]
        ~edges:
          [
            (0, C.Sym.Eps, 1); (1, C.Sym.Eps, 0); (1, l "a", 2); (2, C.Sym.Eps, 0);
          ]
        () );
    (* annotated diamond with a dead branch *)
    ( 3,
      A.make ~start:0 ~finals:[ 3 ]
        ~edges:[ (0, l "a", 1); (0, l "b", 2); (1, l "c", 3); (2, l "d", 2) ]
        ~ann:[ (1, C.Formula.var "A#B#cOp") ]
        () );
  ]

let all_inputs () =
  Lazy.force random_inputs @ Lazy.force protocol_inputs @ edge_inputs

(* Both kernels, fresh copies (a private index per run, so neither mode
   sees caches the other built), compared structurally. *)
let differential name op =
  List.iter
    (fun (s, x) ->
      let packed = with_packed (fun () -> op (A.copy x)) in
      let map = with_map (fun () -> op (A.copy x)) in
      check_bool
        (Printf.sprintf "%s packed = map (input %d)" name s)
        true
        (A.structurally_equal packed map))
    (all_inputs ())

let test_determinize () = differential "determinize" C.Determinize.determinize
let test_eliminate () = differential "eliminate" C.Epsilon.eliminate
let test_minimize () = differential "minimize" C.Minimize.minimize

let binop_differential name op =
  List.iter
    (fun s ->
      let a = W.random ~seed:(2 * s) ~states:5 ~ann_p:0.3 () in
      let b = W.random ~seed:((2 * s) + 1) ~states:5 ~ann_p:0.3 () in
      let packed = with_packed (fun () -> op (A.copy a) (A.copy b)) in
      let map = with_map (fun () -> op (A.copy a) (A.copy b)) in
      check_bool
        (Printf.sprintf "%s packed = map (seed %d)" name s)
        true
        (A.structurally_equal packed map))
    (List.init n_seeds Fun.id)

let test_intersect () = binop_differential "intersect" C.Ops.intersect
let test_difference () = binop_differential "difference" C.Ops.difference
let test_union () = binop_differential "union" C.Ops.union

let test_emptiness () =
  List.iter
    (fun (s, x) ->
      let rp = with_packed (fun () -> C.Emptiness.analyze (A.copy x)) in
      let rm = with_map (fun () -> C.Emptiness.analyze (A.copy x)) in
      check_bool
        (Printf.sprintf "verdict (input %d)" s)
        rm.C.Emptiness.nonempty rp.C.Emptiness.nonempty;
      check_bool
        (Printf.sprintf "sat set (input %d)" s)
        true
        (A.ISet.equal rm.C.Emptiness.sat rp.C.Emptiness.sat);
      check_int
        (Printf.sprintf "iterations (input %d)" s)
        rm.C.Emptiness.iterations rp.C.Emptiness.iterations)
    (all_inputs ())

(* ε-closures against a naive reference walk, and through both closure
   entry points. *)
let naive_closure a set =
  let rec go seen = function
    | [] -> seen
    | q :: rest ->
        if A.ISet.mem q seen then go seen rest
        else go (A.ISet.add q seen) (A.eps_succs a q @ rest)
  in
  go A.ISet.empty (A.ISet.elements set)

let test_closures () =
  List.iter
    (fun (s, x) ->
      List.iter
        (fun q ->
          let reference = naive_closure x (A.ISet.singleton q) in
          let packed =
            with_packed (fun () -> C.Epsilon.closure_of (A.copy x) q)
          in
          let map = with_map (fun () -> C.Epsilon.closure_of (A.copy x) q) in
          check_bool
            (Printf.sprintf "closure_of packed (input %d, state %d)" s q)
            true
            (A.ISet.equal reference packed);
          check_bool
            (Printf.sprintf "closure_of map (input %d, state %d)" s q)
            true
            (A.ISet.equal reference map))
        (A.states x);
      let all = A.ISet.of_list (A.states x) in
      let reference = naive_closure x all in
      let packed = with_packed (fun () -> C.Epsilon.closure (A.copy x) all) in
      check_bool
        (Printf.sprintf "closure of full state set (input %d)" s)
        true
        (A.ISet.equal reference packed))
    (all_inputs ())

let test_complete () =
  let over = W.vocabulary 6 in
  List.iter
    (fun (s, x) ->
      let x = C.Determinize.determinize x in
      let packed = with_packed (fun () -> C.Complete.complete ~over (A.copy x)) in
      let map = with_map (fun () -> C.Complete.complete ~over (A.copy x)) in
      check_bool
        (Printf.sprintf "complete packed = map (input %d)" s)
        true
        (A.structurally_equal packed map))
    (all_inputs ())

(* The packed serialize fast path must produce the same digest as the
   ordered-map rendering — it only runs when the pack is already
   cached, so force the cache first. *)
let test_fingerprint () =
  List.iter
    (fun (s, x) ->
      let packed =
        with_packed (fun () ->
            let x = A.copy x in
            ignore (A.Packed.get x);
            C.Fingerprint.compute x)
      in
      let map = with_map (fun () -> C.Fingerprint.compute (A.copy x)) in
      check_bool (Printf.sprintf "digest (input %d)" s) true (packed = map))
    (all_inputs ())

(* ------------------------------------------------------------------ *)
(* Fuel parity                                                         *)
(* ------------------------------------------------------------------ *)

(* Run one op under a pure-fuel budget in both kernel modes: identical
   [`Done] results, or identical [`Exceeded] trip points — same reason,
   same [spent] — at every fuel level up to completion. *)
let fuel_parity name op inputs =
  List.iter
    (fun (s, x) ->
      let run mode fuel =
        mode (fun () ->
            let b = B.create ~fuel () in
            let r = B.run b (fun () -> op (A.copy x)) in
            (r, B.spent b))
      in
      (* fuel needed to finish, from an unbounded probe *)
      let full =
        with_packed (fun () ->
            let b = B.create () in
            ignore (B.run b (fun () -> op (A.copy x)));
            B.spent b)
      in
      List.iter
        (fun fuel ->
          let rp, sp = run with_packed fuel in
          let rm, sm = run with_map fuel in
          check_int
            (Printf.sprintf "%s: spent at fuel %d (input %d)" name fuel s)
            sm sp;
          match (rp, rm) with
          | `Done dp, `Done dm ->
              check_bool
                (Printf.sprintf "%s: done at fuel %d (input %d)" name fuel s)
                true
                (A.structurally_equal dp dm)
          | `Exceeded ip, `Exceeded im ->
              check_bool
                (Printf.sprintf "%s: reason at fuel %d (input %d)" name fuel s)
                true
                (ip.B.reason = im.B.reason);
              check_int
                (Printf.sprintf "%s: trip spent at fuel %d (input %d)" name
                   fuel s)
                im.B.spent ip.B.spent
          | _ ->
              Alcotest.failf "%s: kernels diverge at fuel %d (input %d)" name
                fuel s)
        (List.init (full + 1) (fun i -> i + 1)))
    inputs

let parity_inputs () =
  List.filteri (fun i _ -> i mod 10 = 0) (all_inputs ())

let test_fuel_determinize () =
  fuel_parity "determinize" C.Determinize.determinize (parity_inputs ())

let test_fuel_eliminate () =
  fuel_parity "eliminate" C.Epsilon.eliminate (parity_inputs ())

let test_fuel_binops () =
  List.iter
    (fun s ->
      let a = W.random ~seed:(2 * s) ~states:5 ~ann_p:0.3 () in
      let b = W.random ~seed:((2 * s) + 1) ~states:5 ~ann_p:0.3 () in
      fuel_parity "difference"
        (fun x -> C.Ops.difference x (A.copy b))
        [ (s, a) ])
    [ 0; 7; 23 ]

let test_fuel_emptiness () =
  List.iter
    (fun (s, x) ->
      let probe =
        with_packed (fun () ->
            let b = B.create () in
            ignore (B.run b (fun () -> C.Emptiness.analyze (A.copy x)));
            B.spent b)
      in
      List.iter
        (fun fuel ->
          let go mode =
            mode (fun () ->
                let b = B.create ~fuel () in
                (B.run b (fun () -> C.Emptiness.analyze (A.copy x)), B.spent b))
          in
          let rp, sp = go with_packed in
          let rm, sm = go with_map in
          check_int (Printf.sprintf "spent at fuel %d (input %d)" fuel s) sm sp;
          match (rp, rm) with
          | `Done dp, `Done dm ->
              check_bool
                (Printf.sprintf "sat at fuel %d (input %d)" fuel s)
                true
                (A.ISet.equal dm.C.Emptiness.sat dp.C.Emptiness.sat)
          | `Exceeded ip, `Exceeded im ->
              check_int
                (Printf.sprintf "trip at fuel %d (input %d)" fuel s)
                im.B.spent ip.B.spent
          | _ -> Alcotest.failf "diverge at fuel %d (input %d)" fuel s)
        (List.init (probe + 1) (fun i -> i + 1)))
    (parity_inputs ())

(* Fuel trips must also be identical across pool sizes in both kernel
   modes: the evolution pipeline mints op budgets inside pool tasks, so
   a fueled run's degradations are a deterministic function of the
   model — not of the schedule or of the kernel representation. *)
let test_fuel_pool_parity () =
  let model =
    C.Choreography.Model.of_processes
      (List.map snd C.Scenario.Procurement.parties)
  in
  let run mode jobs =
    mode (fun () ->
        let config =
          {
            C.Choreography.Evolution.default with
            jobs;
            op_budget = { B.spec_unlimited with fuel = Some 200 };
          }
        in
        match
          C.Choreography.Evolution.run ~config model ~owner:"A"
            ~changed:C.Scenario.Procurement.accounting_cancel
        with
        | Ok r ->
            ( r.C.Choreography.Evolution.consistent,
              List.map
                (fun (rd : C.Choreography.Evolution.round) ->
                  ( rd.originator,
                    rd.public_changed,
                    List.map
                      (fun (p : C.Choreography.Evolution.partner_report) ->
                        ( p.partner,
                          p.verdict,
                          Option.is_some p.outcome,
                          List.length p.degraded ))
                      rd.partners ))
                r.C.Choreography.Evolution.rounds )
        | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p)
  in
  let reference = run with_map 1 in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "packed fueled run equal (jobs=%d)" jobs)
        true
        (run with_packed jobs = reference);
      check_bool
        (Printf.sprintf "map fueled run equal (jobs=%d)" jobs)
        true
        (run with_map jobs = reference))
    [ 1; 2; 8 ]

let () =
  Alcotest.run "packed"
    [
      ( "differential",
        [
          Alcotest.test_case "determinize" `Quick test_determinize;
          Alcotest.test_case "eliminate" `Quick test_eliminate;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "intersect" `Quick test_intersect;
          Alcotest.test_case "difference" `Quick test_difference;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "emptiness" `Quick test_emptiness;
          Alcotest.test_case "closures" `Quick test_closures;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
        ] );
      ( "fuel parity",
        [
          Alcotest.test_case "determinize" `Quick test_fuel_determinize;
          Alcotest.test_case "eliminate" `Quick test_fuel_eliminate;
          Alcotest.test_case "binops" `Quick test_fuel_binops;
          Alcotest.test_case "emptiness" `Quick test_fuel_emptiness;
          Alcotest.test_case "pool sizes 1/2/8" `Quick test_fuel_pool_parity;
        ] );
    ]
