(* The resource-governance layer (lib/guard + the budgeted algebra):
   budget unit behaviour, cancellation, fuel determinism across pool
   sizes, the adversarial-blowup deadline, and the engine's degrade
   policies. *)

module C = Chorev
module B = C.Guard.Budget
module G = C.Guarded
module M = C.Choreography.Model
module Ev = C.Choreography.Evolution
module P = C.Scenario.Procurement
module W = C.Workload.Gen_afsa

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let procurement () = M.of_processes (List.map snd P.parties)

(* ------------------------------ units ------------------------------- *)

let test_unlimited_is_free () =
  check_bool "unlimited" true (B.is_unlimited B.unlimited);
  check_bool "spec unlimited" true (B.spec_is_unlimited B.spec_unlimited);
  (* of_spec with no bounds returns the singleton *)
  check_bool "of_spec singleton" true (B.is_unlimited (B.of_spec B.spec_unlimited));
  (* ticking it forever is a no-op *)
  for _ = 1 to 1_000 do
    B.tick B.unlimited
  done;
  check_int "no fuel spent" 0 (B.spent B.unlimited)

let test_fuel_trips_exactly () =
  let b = B.create ~fuel:10 () in
  for _ = 1 to 10 do
    B.tick b
  done;
  check_int "spent all" 10 (B.spent b);
  check_bool "not yet tripped" true (B.exceeded b = None);
  (match B.tick b with
  | () -> Alcotest.fail "tick past fuel must raise"
  | exception B.Expired info ->
      check_bool "fuel reason" true (info.B.reason = `Fuel));
  check_bool "stays tripped" true (B.exceeded b <> None)

let test_run_converts_expired () =
  let b = B.create ~fuel:5 () in
  (match
     B.run b (fun () ->
         for _ = 1 to 100 do
           B.tick b
         done)
   with
  | `Done () -> Alcotest.fail "must exceed"
  | `Exceeded info -> check_bool "fuel" true (info.B.reason = `Fuel));
  (* a successful run returns `Done *)
  let b2 = B.create ~fuel:5 () in
  match B.run b2 (fun () -> B.tick b2; 42) with
  | `Done v -> check_int "done value" 42 v
  | `Exceeded _ -> Alcotest.fail "must not exceed"

let test_run_does_not_eat_foreign_trips () =
  (* an enclosing budget's Expired must propagate through an inner
     Budget.run, not be converted at the wrong level *)
  let outer = B.create ~fuel:3 () in
  let inner = B.create ~fuel:1_000 () in
  match
    B.run inner (fun () ->
        for _ = 1 to 100 do
          B.tick outer
        done)
  with
  | `Done () | `Exceeded _ -> Alcotest.fail "outer trip must escape inner run"
  | exception B.Expired info -> check_bool "outer's info" true (info.B.reason = `Fuel)

let test_cancellation () =
  let c = B.Cancel.create () in
  let b = B.create ~cancel:c () in
  (* not cancelled: check passes *)
  B.check b;
  B.Cancel.cancel c;
  check_bool "token cancelled" true (B.Cancel.cancelled c);
  match B.check b with
  | () -> Alcotest.fail "check after cancel must raise"
  | exception B.Expired info ->
      check_bool "cancelled reason" true (info.B.reason = `Cancelled)

let test_sub_and_charge () =
  let parent = B.create ~fuel:100 () in
  let child = B.sub parent { B.fuel = Some 1_000; timeout_s = None } in
  (* the child is capped by the parent's remainder *)
  (match
     B.run child (fun () ->
         while true do
           B.tick child
         done)
   with
  | `Done _ -> assert false
  | `Exceeded info -> check_int "child capped at parent remainder" 100 info.B.spent);
  B.charge parent (B.spent child);
  match B.charge parent 1 with
  | () -> Alcotest.fail "parent must be out of fuel"
  | exception B.Expired info -> check_bool "parent fuel" true (info.B.reason = `Fuel)

(* -------------------------- budgeted algebra ------------------------ *)

(* [density] is edges per state, so 6.0 on 30 states ≈ 180 edges; the
   product explores far more than a handful of pair states but its
   canonical form (used by [equal_annotated]) stays cheap *)
let dense seed = W.random ~seed ~states:30 ~labels:8 ~density:6.0 ()

let test_guarded_ops_exceed () =
  (* a ∩ a: a self-product is guaranteed to explore at least the
     diagonal (two independent random seeds often share no path from
     the start, fizzling to a one-state product) *)
  let a = dense 1 in
  let b = a in
  let tiny = B.create ~fuel:3 () in
  (match G.intersect ~budget:tiny a b with
  | `Exceeded _ -> ()
  | `Done _ -> Alcotest.fail "3 fuel units cannot build this product");
  (* same inputs, enough fuel: `Done, equal to the unbudgeted result *)
  let big = B.create ~fuel:10_000_000 () in
  match G.intersect ~budget:big a b with
  | `Exceeded info -> Alcotest.failf "unexpected trip: %a" B.pp_info info
  | `Done p ->
      check_bool "same as unbudgeted" true
        (C.Equiv.equal_annotated p (C.Ops.intersect a b))

let test_minimize_or_self () =
  (* small but dense: minimization needs far more than 2 fuel units,
     yet the subset construction in the equivalence check stays tame
     (a dense 60-state NFA would blow up exponentially there) *)
  let a = W.random ~seed:3 ~states:12 ~labels:8 ~density:8.0 () in
  let m, trip = G.minimize_or_self ~budget:(B.create ~fuel:2 ()) a in
  check_bool "degraded to self" true (trip <> None && m == a);
  let m2, trip2 = G.minimize_or_self ~budget:B.unlimited a in
  check_bool "full minimize" true (trip2 = None);
  check_bool "language preserved" true
    (C.Equiv.equal_annotated (C.Determinize.determinize m2) (C.Determinize.determinize a))

(* --------------------------- determinism ---------------------------- *)

(* Same (input, fuel) must produce the same `Done/`Exceeded split at
   every pool size: budgets are minted inside the pool tasks, and fuel
   is a property of the work, not the schedule. *)
let degraded_signature report =
  List.map
    (fun (r : Ev.round) ->
      ( r.Ev.originator,
        List.map
          (fun (pr : Ev.partner_report) ->
            ( pr.Ev.partner,
              pr.Ev.degraded <> [],
              match pr.Ev.outcome with
              | None -> false
              | Some o -> o.C.Propagate.Engine.degraded <> [] ))
          r.Ev.partners ))
    report.Ev.rounds

let run_with ~jobs ~fuel t changed =
  let config =
    {
      Ev.default with
      jobs;
      op_budget = { B.fuel; timeout_s = None };
    }
  in
  match Ev.run ~config t ~owner:"A" ~changed with
  | Ok rep -> rep
  | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p

let test_pool_size_determinism () =
  let t = procurement () in
  List.iter
    (fun fuel ->
      let r1 = run_with ~jobs:1 ~fuel t P.accounting_cancel in
      let r2 = run_with ~jobs:2 ~fuel t P.accounting_cancel in
      let r8 = run_with ~jobs:8 ~fuel t P.accounting_cancel in
      let s1 = degraded_signature r1 in
      check_bool "pool 1 = pool 2" true (s1 = degraded_signature r2);
      check_bool "pool 1 = pool 8" true (s1 = degraded_signature r8);
      check_bool "same verdict" true
        (r1.Ev.consistent = r2.Ev.consistent
        && r2.Ev.consistent = r8.Ev.consistent))
    [ Some 50; Some 5_000; Some 500_000; None ]

(* ------------------------- adversarial blowup ----------------------- *)

(* The product of dense random automata blows up combinatorially; under
   a deadline the op must return `Exceeded within (roughly) that
   deadline instead of hanging. *)
let test_blowup_exceeds_within_deadline () =
  let a = W.random ~seed:11 ~states:400 ~labels:4 ~density:30.0 ()
  and b = W.random ~seed:12 ~states:400 ~labels:4 ~density:30.0 ()
  and c = W.random ~seed:13 ~states:400 ~labels:4 ~density:30.0 () in
  let deadline = 0.5 in
  let budget = B.create ~timeout_s:deadline () in
  let t0 = Unix.gettimeofday () in
  let r =
    B.run budget (fun () ->
        C.Ops.intersect ~budget (C.Ops.intersect ~budget a b) c)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r with
  | `Exceeded info -> check_bool "deadline reason" true (info.B.reason = `Deadline)
  | `Done _ -> Alcotest.fail "dense 400^3 product must not fit 0.5 s");
  (* amortized polling adds slack, but the unwind must be prompt *)
  check_bool
    (Printf.sprintf "returned within 4x the deadline (%.2fs)" elapsed)
    true
    (elapsed < 4.0 *. deadline)

(* --------------------------- engine degrade ------------------------- *)

let test_engine_degrades_not_raises () =
  let t = procurement () in
  (* fuel far too small for any real step: every partner pipeline
     degrades, nothing raises, and the report says so *)
  let config =
    {
      Ev.default with
      op_budget = { B.fuel = Some 2; timeout_s = None };
      round_budget = { B.fuel = Some 4; timeout_s = None };
    }
  in
  match Ev.run ~config t ~owner:"A" ~changed:P.accounting_cancel with
  | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p
  | Ok rep ->
      let any_degraded =
        List.exists
          (fun (r : Ev.round) ->
            List.exists
              (fun (pr : Ev.partner_report) ->
                pr.Ev.degraded <> []
                ||
                match pr.Ev.outcome with
                | None -> false
                | Some o -> o.C.Propagate.Engine.degraded <> [])
              r.Ev.partners)
          rep.Ev.rounds
      in
      check_bool "some step degraded" true any_degraded;
      (* degraded runs never silently claim success: starved re-checks
         count as inconsistent *)
      check_bool "no false consistency claim" false rep.Ev.consistent

let test_unlimited_config_unchanged () =
  (* the default config must behave exactly as before the guard layer *)
  let t = procurement () in
  match Ev.run t ~owner:"A" ~changed:P.accounting_cancel with
  | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p
  | Ok rep ->
      check_bool "consistent" true rep.Ev.consistent;
      List.iter
        (fun (r : Ev.round) ->
          List.iter
            (fun (pr : Ev.partner_report) ->
              check_bool "no degrade markers" true (pr.Ev.degraded = []);
              match pr.Ev.outcome with
              | None -> ()
              | Some o ->
                  check_bool "no engine degrade" true
                    (o.C.Propagate.Engine.degraded = []))
            r.Ev.partners)
        rep.Ev.rounds

(* ----------------------------- protocol ----------------------------- *)

let test_protocol_under_starved_budget () =
  (* a starved node nacks instead of adapting: the protocol terminates
     (no retry storm) and reports disagreement *)
  let t = procurement () in
  let config =
    {
      Ev.default with
      op_budget = { B.fuel = Some 2; timeout_s = None };
    }
  in
  let r =
    C.Choreography.Protocol.run ~engine_config:config t ~owner:"A"
      ~changed:P.accounting_cancel
  in
  check_bool "starved protocol disagrees" false r.C.Choreography.Protocol.agreed;
  (* and with the default config the same run agrees *)
  let r' = C.Choreography.Protocol.run t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "unlimited protocol agrees" true r'.C.Choreography.Protocol.agreed

let () =
  Alcotest.run "guard"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited is free" `Quick test_unlimited_is_free;
          Alcotest.test_case "fuel trips exactly" `Quick test_fuel_trips_exactly;
          Alcotest.test_case "run converts Expired" `Quick
            test_run_converts_expired;
          Alcotest.test_case "foreign trips escape" `Quick
            test_run_does_not_eat_foreign_trips;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "sub/charge composition" `Quick
            test_sub_and_charge;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "guarded ops exceed and agree" `Quick
            test_guarded_ops_exceed;
          Alcotest.test_case "minimize_or_self" `Quick test_minimize_or_self;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pool sizes 1/2/8" `Slow
            test_pool_size_determinism;
        ] );
      ( "blowup",
        [
          Alcotest.test_case "dense product exceeds within deadline" `Quick
            test_blowup_exceeds_within_deadline;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "engine degrades, never raises" `Quick
            test_engine_degrades_not_raises;
          Alcotest.test_case "default config full fidelity" `Quick
            test_unlimited_config_unchanged;
          Alcotest.test_case "protocol under starvation" `Quick
            test_protocol_under_starved_budget;
        ] );
    ]
