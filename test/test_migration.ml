(* Dynamic instance migration (the paper's Sec. 8 outlook): replay,
   compliance, dispositions and version coexistence. *)

module C = Chorev
module I = C.Migration.Instance
module Cp = C.Migration.Compliance
module V = C.Migration.Versions
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let l = C.Label.of_string_exn
let gen = C.Public_gen.public

let buyer_pub = gen P.buyer_process
let cancel_view = C.View.tau ~observer:"B" (gen P.accounting_cancel)
let buyer_cancel_pub = gen P.buyer_with_cancel
let buyer_once_pub = gen P.buyer_once

(* ----------------------------- instance ---------------------------- *)

let test_replay () =
  let i = I.make ~id:"i1" ~trace:[ l "B#A#orderOp"; l "A#B#deliveryOp" ] () in
  (match I.replay buyer_pub i with
  | Ok set -> check_int "one reached state" 1 (C.Afsa.ISet.cardinal set)
  | Error _ -> Alcotest.fail "trace must replay");
  let bad = I.make ~id:"i2" ~trace:[ l "A#B#deliveryOp" ] () in
  (match I.replay buyer_pub bad with
  | Error 0 -> ()
  | _ -> Alcotest.fail "expected failure at offset 0");
  check_bool "valid" true (I.valid buyer_pub i);
  check_bool "invalid" false (I.valid buyer_pub bad)

let test_completed () =
  let full =
    I.make ~id:"i3"
      ~trace:[ l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#terminateOp" ]
      ()
  in
  check_bool "completed" true (I.completed buyer_pub full);
  let half = I.make ~id:"i4" ~trace:[ l "B#A#orderOp" ] () in
  check_bool "not completed" false (I.completed buyer_pub half)

let test_extend_sample () =
  let i = I.make ~id:"i5" () in
  let i = I.extend i (l "B#A#orderOp") in
  check_int "length" 1 (I.length i);
  for seed = 0 to 9 do
    let s = I.sample buyer_pub ~id:"s" ~seed ~max_len:6 in
    check_bool
      (Printf.sprintf "sample %d valid" seed)
      true (I.valid buyer_pub s)
  done

(* ---------------------------- compliance --------------------------- *)

let test_compliance_fresh_instance_migrates () =
  let i = I.make ~id:"fresh" () in
  check_bool "fresh migratable" true
    (Cp.is_migratable (Cp.check buyer_cancel_pub i))

let test_compliance_mid_flight () =
  (* an instance that already received the delivery replays on the
     cancel-aware buyer process *)
  let i = I.make ~id:"mid" ~trace:[ l "B#A#orderOp"; l "A#B#deliveryOp" ] () in
  check_bool "migratable to fig14 process" true
    (Cp.is_migratable (Cp.check buyer_cancel_pub i));
  (* …but an instance that did two tracking rounds cannot migrate to
     the fig18 (once-only) process *)
  let two_rounds =
    I.make ~id:"two"
      ~trace:
        [
          l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
          l "A#B#statusOp"; l "B#A#get_statusOp"; l "A#B#statusOp";
        ]
      ()
  in
  (match Cp.check buyer_once_pub two_rounds with
  | Cp.Not_compliant { at = 4; label } ->
      Alcotest.(check string) "offending label" "B#A#get_statusOp"
        (C.Label.to_string label)
  | v -> Alcotest.fail (Fmt.str "expected Not_compliant at 4, got %a" Cp.pp_verdict v));
  (* one round is fine *)
  let one_round =
    I.make ~id:"one"
      ~trace:
        [
          l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
          l "A#B#statusOp";
        ]
      ()
  in
  check_bool "one round migratable" true
    (Cp.is_migratable (Cp.check buyer_once_pub one_round))

let test_dead_end () =
  (* new process where after "x" the protocol demands an unsupported
     mandatory message *)
  let a =
    C.Afsa.of_strings ~start:0 ~finals:[ 2 ]
      ~edges:[ (0, "A#B#x", 1); (1, "A#B#y", 2) ]
      ~ann:[ (1, C.Formula.var "A#B#z") ]
      ()
  in
  let i = I.make ~id:"d" ~trace:[ l "A#B#x" ] () in
  (match Cp.check a i with
  | Cp.Dead_end _ -> ()
  | v -> Alcotest.fail (Fmt.str "expected Dead_end, got %a" Cp.pp_verdict v))

let test_dispose () =
  let two_rounds =
    I.make ~id:"two"
      ~trace:
        [
          l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
          l "A#B#statusOp"; l "B#A#get_statusOp"; l "A#B#statusOp";
        ]
      ()
  in
  check_bool "finishes on old" true
    (Cp.dispose ~old_public:buyer_pub ~new_public:buyer_once_pub two_rounds
    = Cp.Finish_on_old);
  let fresh = I.make ~id:"f" () in
  check_bool "fresh migrates" true
    (Cp.dispose ~old_public:buyer_pub ~new_public:buyer_once_pub fresh
    = Cp.Migrate);
  (* an instance invalid on both versions is stuck *)
  let alien = I.make ~id:"a" ~trace:[ l "X#Y#nopeOp" ] () in
  check_bool "alien stuck" true
    (Cp.dispose ~old_public:buyer_pub ~new_public:buyer_once_pub alien
    = Cp.Stuck)

let test_partition () =
  let insts =
    [
      I.make ~id:"fresh" ();
      I.make ~id:"two"
        ~trace:
          [
            l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
            l "A#B#statusOp"; l "B#A#get_statusOp"; l "A#B#statusOp";
          ]
        ();
    ]
  in
  let yes, no = Cp.partition buyer_once_pub insts in
  check_int "one migratable" 1 (List.length yes);
  check_int "one blocked" 1 (List.length no)

(* ----------------------------- versions ---------------------------- *)

let test_versions_lifecycle () =
  let v = V.create buyer_pub in
  check_int "v1" 1 (V.version_number (V.current v));
  V.start v (I.make ~id:"fresh" ());
  V.start v (I.make ~id:"active" ~trace:[ l "B#A#orderOp" ] ());
  V.start v
    (I.make ~id:"two-rounds"
       ~trace:
         [
           l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
           l "A#B#statusOp"; l "B#A#get_statusOp"; l "A#B#statusOp";
         ]
       ());
  let rep = V.publish v buyer_once_pub in
  check_int "to v2" 2 rep.V.to_version;
  check_bool "fresh migrated" true (List.mem "fresh" rep.V.migrated);
  check_bool "active migrated" true (List.mem "active" rep.V.migrated);
  check_bool "two-rounds stays" true
    (List.mem_assoc "two-rounds" rep.V.finishing_on_old);
  check_int "no stuck" 0 (List.length rep.V.stuck);
  (* v1 still has its instance: not retirable *)
  check_int "nothing retired" 0 (List.length (V.retire_drained v));
  (* drain it: the remaining v1 instance completes and is removed *)
  check_bool "drained" true (V.remove v ~id:"two-rounds");
  Alcotest.(check (list int)) "v1 retired" [ 1 ] (V.retire_drained v);
  Alcotest.(check (list int)) "only v2 remains" [ 2 ] (V.version_numbers v)

let test_versions_observe () =
  let v = V.create buyer_pub in
  V.start v (I.make ~id:"i" ());
  V.observe v ~id:"i" (l "B#A#orderOp");
  let _, i = List.hd (V.all_instances v) in
  check_int "observed" 1 (I.length i)

(* A new process on which the trace replays but dead-ends (mandatory
   continuation impossible): the disposition depends on the *old*
   version — Finish_on_old when the old one can still complete, Stuck
   when it dead-ends too. *)
let test_dispose_dead_end () =
  let dead =
    C.Afsa.of_strings ~start:0 ~finals:[ 2 ]
      ~edges:[ (0, "A#B#x", 1); (1, "A#B#y", 2) ]
      ~ann:[ (1, C.Formula.var "A#B#z") ]
      ()
  in
  let live =
    C.Afsa.of_strings ~start:0 ~finals:[ 2 ]
      ~edges:[ (0, "A#B#x", 1); (1, "A#B#y", 2) ]
      ()
  in
  let i = I.make ~id:"d" ~trace:[ l "A#B#x" ] () in
  (match Cp.check dead i with
  | Cp.Dead_end _ -> ()
  | v -> Alcotest.fail (Fmt.str "expected Dead_end, got %a" Cp.pp_verdict v));
  check_bool "dead-end on new, live on old: finish there" true
    (Cp.dispose ~old_public:live ~new_public:dead i = Cp.Finish_on_old);
  check_bool "dead-end on both: stuck" true
    (Cp.dispose ~old_public:dead ~new_public:dead i = Cp.Stuck)

(* retire_drained must never retire the current version, even when it
   hosts nothing. *)
let test_retire_keeps_current () =
  let v = V.create buyer_pub in
  Alcotest.(check (list int)) "empty current kept" [] (V.retire_drained v);
  Alcotest.(check (list int)) "v1 still live" [ 1 ] (V.version_numbers v);
  ignore (V.publish v buyer_once_pub);
  (* both versions empty: only the non-current one goes *)
  Alcotest.(check (list int)) "v1 retired" [ 1 ] (V.retire_drained v);
  Alcotest.(check (list int)) "empty v2 survives as current" [ 2 ]
    (V.version_numbers v)

let test_versions_store_ops () =
  let v = V.create buyer_pub in
  V.start v (I.make ~id:"a" ());
  V.start v (I.make ~id:"b" ~trace:[ l "B#A#orderOp" ] ());
  let v2 = V.add_version v buyer_cancel_pub in
  check_int "v2 opened" 2 v2;
  check_int "add_version classifies nothing" 0
    (V.version_count (Option.get (V.find_version v v2)));
  V.start_on v 1 (I.make ~id:"c" ());
  Alcotest.(check (list (pair int int)))
    "counts newest first"
    [ (2, 0); (1, 3) ]
    (V.counts v);
  (match V.find_instance v "b" with
  | Some (1, i) -> check_int "b trace" 1 (I.length i)
  | _ -> Alcotest.fail "find_instance b");
  V.move_instance v ~id:"b" ~to_version:2;
  check_bool "b moved" true (V.find_instance v "b" = Some (2, I.make ~id:"b" ~trace:[ l "B#A#orderOp" ] ()));
  Alcotest.(check (list string))
    "admission order stable under moves"
    [ "a"; "b"; "c" ]
    (List.map (fun (_, i) -> i.I.id) (V.in_admission_order v));
  check_int "instance_count" 3 (V.instance_count v);
  check_bool "remove" true (V.remove v ~id:"a");
  check_bool "remove again" false (V.remove v ~id:"a");
  check_int "after remove" 2 (V.instance_count v)

(* ---------------------- choreography-level story ------------------- *)

let test_migration_after_evolution () =
  (* evolve the choreography (cancel change), then migrate the buyer's
     running instances to the adapted buyer process *)
  let o =
    C.Propagate.Engine.run ~direction:C.Propagate.Engine.Additive
      ~a':(gen P.accounting_cancel) ~partner_private:P.buyer_process ()
  in
  let new_buyer_pub = Option.get o.C.Propagate.Engine.adapted_public in
  let v = V.create buyer_pub in
  V.start v (I.make ~id:"running" ~trace:[ l "B#A#orderOp" ] ());
  V.start v (I.make ~id:"tracking"
       ~trace:
         [
           l "B#A#orderOp"; l "A#B#deliveryOp"; l "B#A#get_statusOp";
           l "A#B#statusOp";
         ]
       ());
  let rep = V.publish v new_buyer_pub in
  (* the additive change strictly widens the buyer protocol: every
     running instance migrates *)
  check_int "all migrated" 2 (List.length rep.V.migrated);
  check_int "none finishing on old" 0 (List.length rep.V.finishing_on_old);
  ignore cancel_view

let () =
  Alcotest.run "migration"
    [
      ( "instance",
        [
          Alcotest.test_case "replay" `Quick test_replay;
          Alcotest.test_case "completed" `Quick test_completed;
          Alcotest.test_case "extend/sample" `Quick test_extend_sample;
        ] );
      ( "compliance",
        [
          Alcotest.test_case "fresh migrates" `Quick
            test_compliance_fresh_instance_migrates;
          Alcotest.test_case "mid flight" `Quick test_compliance_mid_flight;
          Alcotest.test_case "dead end" `Quick test_dead_end;
          Alcotest.test_case "dispose" `Quick test_dispose;
          Alcotest.test_case "partition" `Quick test_partition;
        ] );
      ( "versions",
        [
          Alcotest.test_case "lifecycle" `Quick test_versions_lifecycle;
          Alcotest.test_case "observe" `Quick test_versions_observe;
          Alcotest.test_case "dispose at a dead end" `Quick
            test_dispose_dead_end;
          Alcotest.test_case "retire keeps current" `Quick
            test_retire_keeps_current;
          Alcotest.test_case "store operations" `Quick test_versions_store_ops;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "migration after evolution" `Quick
            test_migration_after_evolution;
        ] );
    ]
