(* The multi-tenant evolution service (lib/serve): wire round-trips,
   golden equality against one-shot [Evolution.run], pool-size
   invariance of whole response streams, deterministic load shedding
   under a seeded arrival order, and kill-and-restart recovery of the
   per-tenant journals. *)

module C = Chorev
module S = C.Serve
module W = C.Serve.Wire
module M = C.Choreography.Model
module Ev = C.Choreography.Evolution
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let sexp = C.Bpel.Sexp.process_to_string
let procurement_sexps () = List.map (fun (_, p) -> sexp p) P.parties

(* fresh scratch directories under the system temp dir *)
let dir_counter = ref 0
let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "chorev-serve-test-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* run a script through a fresh server, one cycle per [batch] *)
let run_server ?(options = S.Server.default_options) script =
  let server = S.Server.create ~options () in
  let rec batches acc = function
    | [] -> List.concat (List.rev acc)
    | lines ->
        let rec split k taken = function
          | rest when k = 0 -> (List.rev taken, rest)
          | [] -> (List.rev taken, [])
          | l :: rest -> split (k - 1) (l :: taken) rest
        in
        let chunk, rest = split options.S.Server.batch [] lines in
        let reqs =
          List.filter_map
            (fun l -> Result.to_option (W.request_of_string l))
            chunk
        in
        batches (List.map W.response_to_string (S.Server.cycle server reqs) :: acc) rest
  in
  batches [] script

(* --------------------------- wire protocol ------------------------- *)

let test_wire_roundtrip () =
  let reqs =
    [
      { W.id = 1; op = W.Register { tenant = "t"; processes = procurement_sexps () } };
      {
        W.id = 2;
        op =
          W.Evolve
            {
              tenant = "t";
              owner = "A";
              changed = sexp P.accounting_cancel;
              klass = W.Interactive;
            };
      };
      { W.id = 3; op = W.Query { tenant = "t" } };
      { W.id = 4; op = W.Migrate_status { tenant = "t" } };
      {
        W.id = 5;
        op = W.Publish { tenant = "t"; party = "A"; instances = 500; seed = 7 };
      };
      { W.id = 6; op = W.Stats };
    ]
  in
  List.iter
    (fun r ->
      match W.request_of_string (W.request_to_string r) with
      | Ok r' -> check_bool "request round-trips" true (r = r')
      | Error (_, e) -> Alcotest.fail e)
    reqs;
  (* responses: every body the server emits round-trips *)
  let resps =
    [
      {
        W.id = 1;
        result =
          Ok
            (W.Registered
               { tenant = "t"; parties = [ "A"; "B" ]; versions = [ 1; 1 ]; digest = "d" });
      };
      {
        W.id = 2;
        result =
          Ok (W.Evolved { consistent = true; rounds = 2; digest = "d"; degraded = false });
      };
      {
        W.id = 3;
        result =
          Ok
            (W.Queried
               { parties = [ "A" ]; consistent = false; digest = "d"; evolutions = 3 });
      };
      {
        W.id = 4;
        result =
          Ok
            (W.Migration
               [
                 {
                   W.party = "A";
                   service = "svc-000000";
                   version = 2;
                   running = 120;
                   schemas = 2;
                 };
               ]);
      };
      {
        W.id = 5;
        result =
          Ok
            (W.Published
               {
                 party = "A";
                 to_version = 3;
                 migrated = 400;
                 finishing = 90;
                 stuck = 10;
                 total = 500;
               });
      };
      { W.id = 6; result = Error `Overloaded };
      { W.id = 7; result = Error (`Unknown_tenant "nope") };
    ]
  in
  List.iter
    (fun r ->
      match W.response_of_string (W.response_to_string r) with
      | Ok r' -> check_bool "response round-trips" true (r = r')
      | Error e -> Alcotest.fail e)
    resps;
  (* malformed lines keep the id when one is recoverable *)
  (match W.request_of_string {|{"v":1,"id":9,"op":"nope"}|} with
  | Error (9, _) -> ()
  | _ -> Alcotest.fail "expected an id-9 error");
  match W.request_of_string {|{"v":2,"id":9,"op":"stats"}|} with
  | Error (9, msg) ->
      check_bool "version gate" true
        (String.length msg > 0 && String.sub msg 0 11 = "unsupported")
  | _ -> Alcotest.fail "expected a version error"

(* ------------------------- golden vs Evolution.run ------------------ *)

(* A single-tenant evolve through the server equals the one-shot
   [Evolution.run] verdict — consistency, round count and final model
   digest — at every pool size. *)
let test_golden_single_tenant () =
  let direct =
    match
      Ev.run (M.of_processes (List.map snd P.parties)) ~owner:"A"
        ~changed:P.accounting_cancel
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "direct run failed"
  in
  List.iter
    (fun jobs ->
      let options = { S.Server.default_options with jobs } in
      let server = S.Server.create ~options () in
      let resp op = S.Server.handle server { W.id = 1; op } in
      (match
         (resp (W.Register { tenant = "proc"; processes = procurement_sexps () }))
           .result
       with
      | Ok (W.Registered { parties; versions; _ }) ->
          check_bool "three parties" true (parties = [ "A"; "B"; "L" ]);
          check_bool "all v1" true (versions = [ 1; 1; 1 ])
      | _ -> Alcotest.fail "register failed");
      match
        (resp
           (W.Evolve
              {
                tenant = "proc";
                owner = "A";
                changed = sexp P.accounting_cancel;
                klass = W.Bulk;
              }))
          .result
      with
      | Ok (W.Evolved { consistent; rounds; digest; degraded }) ->
          check_bool
            (Printf.sprintf "consistent matches (jobs=%d)" jobs)
            direct.Ev.consistent consistent;
          check_int "rounds match" (List.length direct.Ev.rounds) rounds;
          check_string "digest matches"
            (C.Journal.model_digest direct.Ev.choreography)
            digest;
          check_bool "not degraded" false degraded
      | _ -> Alcotest.fail "evolve failed")
    [ 1; 2; 8 ]

(* ------------------------ pool-size invariance ---------------------- *)

(* N tenants, mixed script: the full response stream is byte-identical
   at pool sizes 1, 2 and 8, and equals the scheduler-free oracle. *)
let test_pool_invariance () =
  let script = S.Driver.gen_script ~tenants:6 ~requests:40 ~seed:11 () in
  let golden = S.Driver.oracle script in
  check_int "one response per line" (List.length script) (List.length golden);
  List.iter
    (fun jobs ->
      let got =
        run_server ~options:{ S.Server.default_options with jobs } script
      in
      check_bool
        (Printf.sprintf "stream identical to oracle (jobs=%d)" jobs)
        true
        (List.for_all2 String.equal golden got))
    [ 1; 2; 8 ]

(* --------------------------- load shedding -------------------------- *)

let test_shed_determinism () =
  let script = S.Driver.gen_script ~tenants:4 ~requests:60 ~seed:3 () in
  (* over-commit: read 32 per cycle, admit 8, deadline classes only 4 *)
  let options =
    {
      S.Server.default_options with
      batch = 32;
      queue_capacity = 8;
      headroom = Some 4;
      jobs = 2;
    }
  in
  let shed_ids run =
    List.filter_map
      (fun line ->
        match W.response_of_string line with
        | Ok { W.id; result = Error `Overloaded } -> Some id
        | _ -> None)
      run
  in
  let a = run_server ~options script in
  let b = run_server ~options script in
  let c = run_server ~options:{ options with jobs = 8 } script in
  check_bool "some requests shed" true (shed_ids a <> []);
  check_bool "shed set reproducible" true (shed_ids a = shed_ids b);
  check_bool "shed set pool-size-invariant" true (shed_ids a = shed_ids c);
  check_bool "whole stream reproducible" true (List.for_all2 String.equal a b);
  check_bool "whole stream pool-size-invariant" true
    (List.for_all2 String.equal a c);
  (* the surviving responses equal the oracle of the *effective*
     script — the one with the shed requests removed (a shed evolve
     mutates nothing, so the server's history is the effective one) *)
  let shed = shed_ids a in
  let effective =
    List.filter
      (fun line ->
        match W.request_of_string line with
        | Ok { W.id; _ } -> not (List.mem id shed)
        | Error _ -> true)
      script
  in
  let survivors =
    List.filter
      (fun line ->
        match W.response_of_string line with
        | Ok { W.result = Error `Overloaded; _ } -> false
        | _ -> true)
      a
  in
  List.iter2
    (check_string "surviving response matches effective-script oracle")
    (S.Driver.oracle effective) survivors

(* ------------------------ journals and restart ---------------------- *)

let test_restart_replays () =
  with_dir @@ fun root ->
  let options =
    { S.Server.default_options with journal_root = Some root; jobs = 2 }
  in
  let server = S.Server.create ~options () in
  let resp server op = S.Server.handle server { W.id = 1; op } in
  (match
     (resp server (W.Register { tenant = "proc"; processes = procurement_sexps () }))
       .result
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "register failed");
  let evolved =
    resp server
      (W.Evolve
         {
           tenant = "proc";
           owner = "A";
           changed = sexp P.accounting_cancel;
           klass = W.Bulk;
         })
  in
  (* a publish between the evolve and the restart: its population must
     come back identically from the publish log *)
  (match
     (resp server
        (W.Publish { tenant = "proc"; party = "A"; instances = 200; seed = 5 }))
       .result
   with
  | Ok (W.Published { party = "A"; total = 200; _ }) -> ()
  | _ -> Alcotest.fail "publish failed");
  let query1 = resp server (W.Query { tenant = "proc" }) in
  let migrate1 = resp server (W.Migrate_status { tenant = "proc" }) in
  (* restart: a second server over the same root replays the journals *)
  let server2 = S.Server.create ~options () in
  check_int "one tenant recovered" 1 (S.Server.recovered server2);
  check_string "query byte-identical after restart"
    (W.response_to_string query1)
    (W.response_to_string (resp server2 (W.Query { tenant = "proc" })));
  check_string "migrate-status byte-identical after restart"
    (W.response_to_string migrate1)
    (W.response_to_string (resp server2 (W.Migrate_status { tenant = "proc" })));
  (* versions advanced for the parties whose publics changed *)
  (match (evolved.result, migrate1.result) with
  | Ok (W.Evolved { consistent; _ }), Ok (W.Migration ps) ->
      check_bool "evolution consistent" true consistent;
      check_bool "some party version advanced" true
        (List.exists (fun p -> p.W.version > 1) ps);
      check_bool "published population is visible" true
        (List.exists (fun p -> p.W.party = "A" && p.W.running > 0) ps)
  | _ -> Alcotest.fail "evolve or migrate-status failed");
  (* duplicate registration refused after recovery, too *)
  match
    (resp server2 (W.Register { tenant = "proc"; processes = procurement_sexps () }))
      .result
  with
  | Error (`Duplicate_tenant _) -> ()
  | _ -> Alcotest.fail "expected duplicate-tenant"

(* A crash in the middle of a journaled evolution (after round 1's
   commit) is finished by recovery: the recovered store answers
   exactly like a server that never crashed. *)
let test_crash_mid_evolve () =
  with_dir @@ fun root1 ->
  with_dir @@ fun root2 ->
  let run_with root crash_after =
    let store = S.Tenant.create ~journal_root:root () in
    (match
       S.Tenant.register store "proc"
         ~processes:(List.map snd P.parties)
     with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "register failed");
    match
      S.Tenant.evolve store ~config:C.Config.default ?crash_after "proc"
        ~owner:"A" ~changed:P.accounting_cancel
    with
    | exception C.Journal.Evolve.Simulated_crash _ -> `Crashed
    | Ok _ -> `Done
    | Error _ -> Alcotest.fail "evolve failed"
  in
  check_bool "uninterrupted run completes" true (run_with root1 None = `Done);
  check_bool "crashed run crashes" true (run_with root2 (Some 1) = `Crashed);
  let q root =
    let store, n = S.Tenant.recover ~journal_root:root () in
    check_int "tenant recovered" 1 n;
    match
      (S.Tenant.query store "proc", S.Tenant.migrate_status store "proc")
    with
    | Ok q, Ok m ->
        (W.response_to_string { W.id = 1; result = Ok q },
         W.response_to_string { W.id = 2; result = Ok m })
    | _ -> Alcotest.fail "query failed"
  in
  let q1, m1 = q root1 and q2, m2 = q root2 in
  check_string "crashed+recovered query equals uninterrupted" q1 q2;
  check_string "crashed+recovered migrate-status equals uninterrupted" m1 m2

(* ----------------------------- pipe mode ---------------------------- *)

let test_pipe_mode () =
  let script = S.Driver.gen_script ~tenants:3 ~requests:12 ~seed:5 () in
  let script = script @ [ "this is not json"; {|{"v":1,"id":99,"op":"stats"}|} ] in
  let infile = fresh_dir () and outfile = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf infile; rm_rf outfile)
  @@ fun () ->
  Out_channel.with_open_text infile (fun oc ->
      List.iter (fun l -> output_string oc (l ^ "\n")) script);
  let server = S.Server.create () in
  let served =
    In_channel.with_open_text infile (fun ic ->
        Out_channel.with_open_text outfile (fun oc ->
            S.Server.run_pipe server ic oc))
  in
  check_int "every line answered" (List.length script) served;
  let out =
    In_channel.with_open_text outfile In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  check_int "one response per line" (List.length script) (List.length out);
  (* the bad line got a bad-request, the stats line got a snapshot *)
  let nth n = W.response_of_string (List.nth out n) in
  (match nth (List.length out - 2) with
  | Ok { W.result = Error (`Bad_request _); _ } -> ()
  | _ -> Alcotest.fail "expected bad-request");
  match nth (List.length out - 1) with
  | Ok { W.id = 99; result = Ok (W.Stats_snapshot fields); _ } ->
      check_bool "stats has tenants field" true
        (List.mem_assoc "tenants" fields)
  | _ -> Alcotest.fail "expected stats snapshot"

let () =
  Alcotest.run "serve"
    [
      ("wire", [ Alcotest.test_case "round-trips" `Quick test_wire_roundtrip ]);
      ( "golden",
        [
          Alcotest.test_case "single tenant vs Evolution.run" `Quick
            test_golden_single_tenant;
          Alcotest.test_case "pool-size invariance" `Quick test_pool_invariance;
        ] );
      ( "shedding",
        [ Alcotest.test_case "deterministic" `Quick test_shed_determinism ] );
      ( "durability",
        [
          Alcotest.test_case "restart replays" `Quick test_restart_replays;
          Alcotest.test_case "crash mid-evolve" `Quick test_crash_mid_evolve;
        ] );
      ("pipe", [ Alcotest.test_case "ndjson loop" `Quick test_pipe_mode ]);
    ]
