(* The discrete-event simulator of the decentralized protocol
   (lib/sim): zero-fault oracle equality against Protocol.run, faulty
   convergence to the same outcome, replay determinism, and pool
   invariance of the soak. *)

module C = Chorev
module M = C.Choreography.Model
module Pr = C.Choreography.Protocol
module Sim = C.Sim
module Fault = C.Sim.Fault
module Soak = C.Sim.Soak
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let procurement () = M.of_processes (List.map snd P.parties)

(* ------------------------- zero-fault oracle ------------------------ *)

(* Under Fault.none the sim's event order degenerates to the
   synchronous driver's global FIFO, so verdict and message counts must
   match exactly. *)
let assert_oracle_equal ?(adapt = true) name t ~owner ~changed =
  let oracle = Pr.run ~adapt t ~owner ~changed in
  let sim = Sim.run ~adapt ~profile:Fault.none ~seed:0 t ~owner ~changed in
  check_bool (name ^ ": converged") true sim.Sim.converged;
  check_bool (name ^ ": agreed") oracle.Pr.agreed sim.Sim.agreed;
  check_int (name ^ ": messages") oracle.Pr.stats.Pr.messages
    sim.Sim.stats.Sim.sent;
  check_int (name ^ ": announcements") oracle.Pr.stats.Pr.announcements
    sim.Sim.stats.Sim.announcements;
  check_int (name ^ ": acks") oracle.Pr.stats.Pr.acks sim.Sim.stats.Sim.acks;
  check_int (name ^ ": nacks") oracle.Pr.stats.Pr.nacks
    sim.Sim.stats.Sim.nacks;
  check_int (name ^ ": retries") 0 sim.Sim.stats.Sim.retries;
  check_int (name ^ ": dropped") 0 sim.Sim.stats.Sim.dropped;
  check_bool (name ^ ": final model") true
    (Soak.models_match sim.Sim.final oracle.Pr.final)

let test_oracle_procurement () =
  let t = procurement () in
  assert_oracle_equal "invariant order2" t ~owner:"A"
    ~changed:P.accounting_order2;
  assert_oracle_equal "variant cancel" t ~owner:"A"
    ~changed:P.accounting_cancel;
  assert_oracle_equal "subtractive once" t ~owner:"A"
    ~changed:P.accounting_once;
  assert_oracle_equal ~adapt:false "cancel without adaptation" t ~owner:"A"
    ~changed:P.accounting_cancel

let test_oracle_hub () =
  let hub, spokes = C.Workload.Scale.hub 4 in
  let t = M.of_processes (hub :: spokes) in
  let changed =
    C.Change.Ops.apply_exn
      (C.Change.Ops.Insert_activity
         {
           path = [];
           pos = 0;
           act = C.Bpel.Activity.invoke ~partner:"P0" ~op:"noticeOp";
         })
      hub
  in
  assert_oracle_equal "hub-4 notice" t ~owner:"HUB" ~changed

(* 50 random two-party workloads: generated consistent pair, then a
   random additive change by A. *)
let random_case seed =
  let pa, pb = C.Workload.Gen_process.pair ~seed () in
  let t = M.of_processes [ pa; pb ] in
  let changed =
    match C.Workload.Gen_change.additive ~seed pa with
    | Some op -> C.Change.Ops.apply_exn op pa
    | None -> pa
  in
  (t, changed)

let test_oracle_random_workloads () =
  for seed = 0 to 49 do
    let t, changed = random_case seed in
    assert_oracle_equal (Printf.sprintf "workload seed %d" seed) t ~owner:"A"
      ~changed
  done

(* --------------------------- fault profiles ------------------------- *)

(* 200 seeded runs (50 seeds x 4 profiles: fair loss at the acceptance
   bound, duplication, delay/reorder, one transient partition) must all
   converge to the synchronous oracle's agreed/final outcome. *)
let test_faulty_convergence_200 () =
  let t = procurement () in
  let checks =
    Soak.run
      ~profiles:
        [
          Fault.lossy ~drop:0.3 ();
          Fault.jittery;
          Fault.chaos ();
          Fault.partitioned "B";
        ]
      ~seeds:(List.init 50 Fun.id) t ~owner:"A" ~changed:P.accounting_cancel
  in
  check_int "200 runs" 200 (List.length checks);
  let s = Soak.summarize checks in
  if s.Soak.failures <> [] then
    Alcotest.failf "soak failures:@.%a" Soak.pp_summary s;
  (* faults actually happened: some run lost or retried something *)
  check_bool "faults injected" true (s.Soak.total_dropped > 0);
  check_bool "retries happened" true (s.Soak.total_retries > 0)

let test_crash_restart () =
  let t = procurement () in
  let oracle = Pr.run t ~owner:"A" ~changed:P.accounting_cancel in
  List.iter
    (fun seed ->
      let r =
        Sim.run ~seed
          ~profile:(Fault.crashy ~at:2 ~restart_at:40 "B")
          t ~owner:"A" ~changed:P.accounting_cancel
      in
      check_bool (Printf.sprintf "seed %d converged" seed) true r.Sim.converged;
      check_bool
        (Printf.sprintf "seed %d agreed" seed)
        oracle.Pr.agreed r.Sim.agreed;
      check_bool
        (Printf.sprintf "seed %d final" seed)
        true
        (Soak.models_match r.Sim.final oracle.Pr.final))
    [ 0; 1; 2; 3; 4 ]

(* A nacking, non-adapting partner under faults: the sim must settle on
   the same disagreement as the oracle. *)
let test_faulty_no_adapt () =
  let t = procurement () in
  let oracle = Pr.run ~adapt:false t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "oracle disagrees" false oracle.Pr.agreed;
  List.iter
    (fun seed ->
      let r =
        Sim.run ~adapt:false ~seed
          ~profile:(Fault.lossy ~drop:0.25 ())
          t ~owner:"A" ~changed:P.accounting_cancel
      in
      check_bool (Printf.sprintf "seed %d converged" seed) true r.Sim.converged;
      check_bool (Printf.sprintf "seed %d agreed" seed) false r.Sim.agreed)
    [ 0; 1; 2 ]

(* A partition opening while a crashed node is still recovering: the
   two fault classes combined must still converge to the oracle's
   outcome, and the run must replay byte-identically. *)
let test_partition_during_crash_recovery () =
  let t = procurement () in
  let profile =
    {
      (Fault.crashy ~at:3 ~restart_at:40 "B") with
      Fault.name = "crashy+partitioned(B)";
      partitions =
        [ { Fault.from_tick = 35; until_tick = 70; isolated = [ "B" ] } ];
    }
  in
  let oracle = Pr.run t ~owner:"A" ~changed:P.accounting_cancel in
  List.iter
    (fun seed ->
      let go () =
        Sim.run ~seed ~profile t ~owner:"A" ~changed:P.accounting_cancel
      in
      let r = go () in
      check_bool (Printf.sprintf "seed %d converged" seed) true r.Sim.converged;
      check_bool
        (Printf.sprintf "seed %d agreed" seed)
        oracle.Pr.agreed r.Sim.agreed;
      check_bool
        (Printf.sprintf "seed %d final" seed)
        true
        (Soak.models_match r.Sim.final oracle.Pr.final);
      check_string
        (Printf.sprintf "seed %d replay" seed)
        r.Sim.trace (go ()).Sim.trace)
    [ 0; 1; 2; 3; 4 ]

(* ------------------------ bad-change injection ----------------------- *)

(* Seeded rogue-change injections with rollback armed: every run ends
   repaired or causally reverted — never half-applied — and the check
   list is identical at every pool size. *)
let test_inject_soak_invariant () =
  let t = procurement () in
  let go pool_size =
    Soak.run_inject
      ~pool:(C.Parallel.Pool.sized pool_size)
      ~runs:12 t ~owner:"A"
  in
  let p1 = go 1 and p2 = go 2 and p8 = go 8 in
  check_int "12 runs" 12 (List.length p1);
  List.iter
    (fun c ->
      if not (Soak.inject_ok c) then
        Alcotest.failf "inject soak failure: %a" Soak.pp_inject_check c)
    p1;
  check_bool "pool 1 = pool 2" true (p1 = p2);
  check_bool "pool 1 = pool 8" true (p1 = p8);
  check_bool "some run rolled back" true
    (List.exists (fun c -> c.Soak.i_cone > 0) p1)

let test_inject_replay () =
  let t = procurement () in
  let profile = Fault.with_inject ~seed:7 (Fault.lossy ()) in
  let go () =
    Sim.run ~seed:7 ~profile ~rollback:true t ~owner:"A"
      ~changed:(M.private_ t "A")
  in
  let a = go () in
  check_string "byte-identical trace" a.Sim.trace (go ()).Sim.trace;
  check_bool "injected" true (a.Sim.injected_at <> None);
  check_bool "never half-applied" true (a.Sim.agreed || a.Sim.rolled_back <> [])

(* ---------------------------- determinism --------------------------- *)

let test_replay_determinism () =
  let t = procurement () in
  List.iter
    (fun (profile : Fault.profile) ->
      let go () =
        Sim.run ~seed:42 ~profile t ~owner:"A" ~changed:P.accounting_cancel
      in
      let a = go () and b = go () in
      check_bool
        (profile.Fault.name ^ ": trace nonempty")
        true (a.Sim.trace <> "");
      check_string (profile.Fault.name ^ ": byte-identical trace") a.Sim.trace
        b.Sim.trace;
      check_int (profile.Fault.name ^ ": same sent") a.Sim.stats.Sim.sent
        b.Sim.stats.Sim.sent)
    [ Fault.none; Fault.lossy (); Fault.chaos (); Fault.crashy "B" ]

let test_seed_sensitivity () =
  (* different seeds draw different faults — traces differ (over 8
     seeds at 30% drop at least one pair must diverge) *)
  let t = procurement () in
  let traces =
    List.map
      (fun seed ->
        (Sim.run ~seed
           ~profile:(Fault.lossy ~drop:0.3 ())
           t ~owner:"A" ~changed:P.accounting_cancel)
          .Sim.trace)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check_bool "some seeds differ" true
    (List.length (List.sort_uniq compare traces) > 1)

let test_soak_pool_invariance () =
  let t = procurement () in
  let go pool_size =
    Soak.run
      ~pool:(C.Parallel.Pool.sized pool_size)
      ~profiles:[ Fault.lossy () ]
      ~seeds:(List.init 8 Fun.id) t ~owner:"A" ~changed:P.accounting_cancel
  in
  let seq = go 1 and par = go 2 in
  check_bool "pool size 1 = pool size 2" true (seq = par);
  check_bool "all ok" true (Soak.all_ok seq)

(* ------------------------------ eventq ------------------------------ *)

let test_eventq_order () =
  let q = C.Sim.Eventq.create () in
  ignore (C.Sim.Eventq.add q ~at:5 "e");
  ignore (C.Sim.Eventq.add q ~at:1 "a");
  ignore (C.Sim.Eventq.add q ~at:1 "b");
  ignore (C.Sim.Eventq.add q ~at:3 "c");
  check_int "length" 4 (C.Sim.Eventq.length q);
  Alcotest.(check (option int)) "next_time" (Some 1) (C.Sim.Eventq.next_time q);
  let order = ref [] in
  let rec drain () =
    match C.Sim.Eventq.pop q with
    | None -> ()
    | Some (_, _, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string))
    "time then insertion order" [ "a"; "b"; "c"; "e" ]
    (List.rev !order);
  check_bool "empty" true (C.Sim.Eventq.is_empty q)

let () =
  Alcotest.run "sim"
    [
      ( "oracle",
        [
          Alcotest.test_case "procurement scenarios" `Quick
            test_oracle_procurement;
          Alcotest.test_case "hub" `Quick test_oracle_hub;
          Alcotest.test_case "50 random workloads" `Slow
            test_oracle_random_workloads;
        ] );
      ( "faults",
        [
          Alcotest.test_case "200 seeded runs converge" `Slow
            test_faulty_convergence_200;
          Alcotest.test_case "crash and restart" `Quick test_crash_restart;
          Alcotest.test_case "no-adapt disagreement" `Quick
            test_faulty_no_adapt;
          Alcotest.test_case "partition during crash recovery" `Quick
            test_partition_during_crash_recovery;
        ] );
      ( "inject",
        [
          Alcotest.test_case "soak invariant + pool invariance" `Quick
            test_inject_soak_invariant;
          Alcotest.test_case "inject replay determinism" `Quick
            test_inject_replay;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical replay" `Quick
            test_replay_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "soak pool invariance" `Quick
            test_soak_pool_invariance;
        ] );
      ( "eventq",
        [ Alcotest.test_case "priority order" `Quick test_eventq_order ] );
    ]
