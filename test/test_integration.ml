(* End-to-end integration: the complete controlled-evolution story on
   the paper's scenario and on synthetic choreographies — private
   change → public regeneration → classification → propagation →
   decentralized agreement → operational execution. *)

module C = Chorev
module M = C.Choreography.Model
module P = C.Scenario.Procurement

let evolve_ok t ~owner ~changed =
  match C.Choreography.Evolution.run t ~owner ~changed with
  | Ok r -> r
  | Error (`Unknown_party p) -> failwith ("unknown party " ^ p)

let check_bool = Alcotest.(check bool)
let gen = C.Public_gen.public

(* The paper's complete story, §5.2 then §5.3 applied in sequence:
   accounting introduces cancellation, then limits parcel tracking;
   after each evolution the choreography is consistent and executable. *)
let test_paper_story_in_sequence () =
  let t0 = M.of_processes (List.map snd P.parties) in
  (* Step 1: the cancel change (variant additive for B) *)
  let r1 =
    evolve_ok t0 ~owner:"A" ~changed:P.accounting_cancel
  in
  check_bool "after cancel: consistent" true r1.C.Choreography.Evolution.consistent;
  let t1 = r1.C.Choreography.Evolution.choreography in
  (* Step 2: on top, limit parcel tracking (variant subtractive for B).
     The accounting process now combines both changes. *)
  let accounting_both =
    let open C.Bpel.Activity in
    C.Bpel.Process.make ~name:"accounting-both" ~party:"A"
      ~registry:P.registry
      (seq "accounting"
         [
           receive ~partner:"B" ~op:"orderOp";
           switch "credit check"
             [
               branch ~cond:{|creditStatus = "ok"|}
                 (seq "cond deliver"
                    [
                      invoke ~partner:"L" ~op:"deliverOp";
                      receive ~partner:"L" ~op:"deliver_confOp";
                      invoke ~partner:"B" ~op:"deliveryOp";
                      pick "tracking once?"
                        [
                          on_message ~partner:"B" ~op:"get_statusOp"
                            (seq "track once"
                               [
                                 invoke ~partner:"L" ~op:"get_statusLOp";
                                 invoke ~partner:"B" ~op:"statusOp";
                                 receive ~partner:"B" ~op:"terminateOp";
                                 invoke ~partner:"L" ~op:"terminateLOp";
                                 Terminate;
                               ]);
                          on_message ~partner:"B" ~op:"terminateOp"
                            (seq "terminate now"
                               [ invoke ~partner:"L" ~op:"terminateLOp"; Terminate ]);
                        ];
                    ]);
               otherwise (seq "cond cancel" [ invoke ~partner:"B" ~op:"cancelOp" ]);
             ];
         ])
  in
  let r2 =
    evolve_ok t1 ~owner:"A" ~changed:accounting_both
  in
  check_bool "after both changes: consistent" true
    r2.C.Choreography.Evolution.consistent;
  (* the final choreography executes without deadlock *)
  let t2 = r2.C.Choreography.Evolution.choreography in
  let sys =
    C.Runtime.Exec.make
      (List.map (fun p -> (p, M.public t2 p)) (M.parties t2))
  in
  let e = C.Runtime.Exec.explore sys in
  check_bool "completes" true (e.C.Runtime.Exec.completions > 0);
  (* Bilateral consistency is existential — it guarantees a successful
     conversation exists, not that every 3-party schedule completes.
     Indeed, after the cancel change, the cancellation path leaves
     logistics waiting for a delivery that never comes: a genuine
     limitation of the bilateral criterion, recorded in EXPERIMENTS.md.
     The deadlocked configurations must all stem from cancellation. *)
  List.iter
    (fun config ->
      let stuck_l =
        List.exists
          (fun (ps : C.Runtime.Exec.party_state) ->
            ps.party = "L" && ps.state = C.Afsa.start ps.automaton)
          config
      in
      check_bool "deadlocks only strand logistics at its start" true stuck_l)
    e.C.Runtime.Exec.deadlocks

(* Decentralized protocol reaches the same final publics as the
   centralized pipeline (up to language). *)
let test_protocol_agrees_with_pipeline () =
  let t = M.of_processes (List.map snd P.parties) in
  let central =
    evolve_ok t ~owner:"A" ~changed:P.accounting_cancel
  in
  let decentral = C.Choreography.Protocol.run t ~owner:"A" ~changed:P.accounting_cancel in
  check_bool "both consistent" true
    (central.C.Choreography.Evolution.consistent
    && decentral.C.Choreography.Protocol.agreed);
  List.iter
    (fun party ->
      check_bool
        (party ^ " same public language")
        true
        (C.Equiv.equal_language
           (M.public central.C.Choreography.Evolution.choreography party)
           (M.public decentral.C.Choreography.Protocol.final party)))
    (M.parties t)

(* Random synthetic choreographies under random additive changes: after
   evolution with auto-apply, either consistency is restored or the
   engine honestly reports failure (no silent success). *)
let test_random_additive_evolutions () =
  let ok = ref 0 and total = ref 0 in
  for seed = 0 to 11 do
    let pa, pb = C.Workload.Gen_process.pair ~seed () in
    let t = M.of_processes [ pa; pb ] in
    match C.Workload.Gen_change.additive ~seed:(seed * 3 + 1) pa with
    | None -> ()
    | Some op -> (
        match C.Change.Ops.apply op pa with
        | Error _ -> ()
        | Ok pa' ->
            incr total;
            let rep = evolve_ok t ~owner:"A" ~changed:pa' in
            if rep.C.Choreography.Evolution.consistent then incr ok
            else begin
              (* honest failure: the verdicts must flag a variant change *)
              let flagged =
                List.exists
                  (fun r ->
                    List.exists
                      (fun (p : C.Choreography.Evolution.partner_report) ->
                        C.Change.Classify.requires_propagation p.verdict)
                      r.C.Choreography.Evolution.partners)
                  rep.C.Choreography.Evolution.rounds
              in
              check_bool "failure flagged as variant" true flagged
            end)
  done;
  check_bool "some changes were exercised" true (!total >= 6);
  check_bool "nearly all evolutions converge" true (!ok * 6 >= !total * 5)

(* The operational engine agrees with the theory across the scenario
   matrix: every (changed-accounting, partner) combination. *)
let test_conformance_matrix () =
  let partners =
    [ ("B", gen P.buyer_process); ("L", gen P.logistics_process) ]
  in
  let versions =
    [
      ("orig", gen P.accounting_process);
      ("order2", gen P.accounting_order2);
      ("cancel", gen P.accounting_cancel);
      ("once", gen P.accounting_once);
    ]
  in
  List.iter
    (fun (vn, pub) ->
      List.iter
        (fun (pn, ppub) ->
          let view = C.View.tau ~observer:pn pub in
          let consistent = C.Consistency.consistent view ppub in
          let operational =
            C.Runtime.Conformance.annotated_deadlock_free
              (C.Runtime.Exec.make [ ("A", view); (pn, ppub) ])
          in
          check_bool
            (Printf.sprintf "%s vs %s: theory = operation" vn pn)
            consistent operational)
        partners)
    versions

(* XML round-trip sanity for every scenario process: the emitter
   produces well-formed-looking documents for all of them. *)
let test_xml_emission_all () =
  List.iter
    (fun p ->
      let x = C.Bpel.Pp.to_xml p in
      check_bool
        (C.Bpel.Process.name p ^ " xml")
        true
        (String.length x > 40
        && String.sub x 0 9 = "<process "))
    [
      P.buyer_process; P.accounting_process; P.logistics_process;
      P.accounting_order2; P.accounting_cancel; P.accounting_once;
      P.buyer_with_cancel; P.buyer_once;
    ]

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "paper story in sequence" `Quick
            test_paper_story_in_sequence;
          Alcotest.test_case "protocol = pipeline" `Quick
            test_protocol_agrees_with_pipeline;
          Alcotest.test_case "random additive evolutions" `Quick
            test_random_additive_evolutions;
          Alcotest.test_case "conformance matrix" `Quick
            test_conformance_matrix;
          Alcotest.test_case "xml emission" `Quick test_xml_emission_all;
        ] );
    ]
