(* The incremental re-checking layer (DESIGN.md §10): the bounded LRU,
   structural fingerprints, the weak intern table, the memoized algebra
   wrappers (differential against the raw operations), and the
   cross-round caches of Evolution/Consistency — cached and uncached
   runs must be outcome-identical at every pool size, and a bounded
   cache under churn must never return a stale result after an edit. *)

module C = Chorev
module A = C.Afsa
module FP = C.Fingerprint
module Lru = C.Cache.Lru
module Intern = C.Cache.Intern
module Memo = C.Cache.Memo

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let n_seeds = 120

(* ------------------------------- LRU -------------------------------- *)

let test_lru_basics () =
  let t = Lru.create ~capacity:2 in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  check_bool "find a" true (Lru.find t "a" = Some 1);
  (* "a" is now MRU; adding "c" evicts "b" *)
  Lru.add t "c" 3;
  check_bool "b evicted" true (Lru.find t "b" = None);
  check_bool "a kept" true (Lru.find t "a" = Some 1);
  check_bool "c kept" true (Lru.find t "c" = Some 3);
  check_int "length bounded" 2 (Lru.length t);
  Lru.add t "a" 10;
  check_bool "overwrite" true (Lru.find t "a" = Some 10);
  let s = Lru.stats t in
  check_int "evictions counted" 1 s.Lru.evictions;
  check_bool "hits and misses counted" true
    (s.Lru.hits >= 4 && s.Lru.misses >= 1);
  Lru.clear t;
  check_int "clear empties" 0 (Lru.length t)

let test_lru_capacity_one () =
  let t = Lru.create ~capacity:1 in
  List.iter (fun i -> Lru.add t i (i * i)) [ 1; 2; 3; 4 ];
  check_int "only one binding" 1 (Lru.length t);
  check_bool "latest wins" true (Lru.find t 4 = Some 16);
  check_bool "rejects capacity 0" true
    (match Lru.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Property: under random churn a bounded LRU behaves like the
   unbounded reference map restricted to keys it still holds — a hit
   returns exactly the reference's latest value, never a stale one. *)
let test_lru_model_property () =
  let rng = Random.State.make [| 0xCAFE |] in
  let t = Lru.create ~capacity:5 in
  let reference = Hashtbl.create 64 in
  for _ = 1 to 5_000 do
    let k = Random.State.int rng 20 in
    if Random.State.bool rng then begin
      let v = Random.State.int rng 1_000_000 in
      Hashtbl.replace reference k v;
      Lru.add t k v
    end
    else
      match Lru.find t k with
      | None -> ()
      | Some v ->
          check_int (Printf.sprintf "hit on %d is current" k)
            (Hashtbl.find reference k) v
  done;
  check_bool "size stays bounded" true (Lru.length t <= 5);
  check_int "keys list matches size" (Lru.length t) (List.length (Lru.keys t))

(* --------------------------- fingerprints --------------------------- *)

let lbl s r m = C.Sym.L (C.Label.make ~sender:s ~receiver:r m)

let test_fingerprint_structural () =
  List.iter
    (fun s ->
      let x = C.Workload.Gen_afsa.random ~seed:s ~states:5 ~ann_p:0.4 () in
      let y = A.copy x in
      check_bool
        (Printf.sprintf "copy shares fingerprint (seed %d)" s)
        true
        (String.equal (FP.digest x) (FP.digest y));
      check_bool
        (Printf.sprintf "fingerprint equality is structural equality (seed %d)"
           s)
        true
        (FP.equal x y = A.structurally_equal x y))
    (List.init n_seeds Fun.id);
  (* distinct structures get distinct digests (no trivial collisions) *)
  let a = A.make ~start:0 ~finals:[ 1 ] ~edges:[ (0, lbl "A" "B" "x", 1) ] ()
  and b = A.make ~start:0 ~finals:[ 1 ] ~edges:[ (0, lbl "A" "B" "y", 1) ] () in
  check_bool "different structure, different digest" false (FP.equal a b)

let test_fingerprint_invalidation () =
  let a = A.make ~start:0 ~finals:[ 1 ] ~edges:[ (0, lbl "A" "B" "x", 1) ] () in
  let d0 = FP.digest a in
  check_bool "digest cached after compute" true (FP.peek a = Some d0);
  (* every structural modifier yields a value with no cached digest,
     and recomputation reflects the change *)
  let modified =
    [
      A.add_edge a (1, lbl "B" "A" "y", 0);
      A.set_annotation a 1 (C.Formula.var "m");
      A.set_finals a [ 0 ];
      A.widen_alphabet a [ C.Label.make ~sender:"A" ~receiver:"B" "z" ];
    ]
  in
  List.iteri
    (fun i m ->
      check_bool (Printf.sprintf "modifier %d resets cache" i) true
        (FP.peek m = None);
      check_bool (Printf.sprintf "modifier %d changes digest" i) false
        (String.equal (FP.digest m) d0))
    modified;
  check_bool "original digest untouched" true (FP.peek a = Some d0);
  check_bool "digest is deterministic" true (String.equal (FP.compute a) d0)

let test_fingerprint_minimize_canonical () =
  (* language-equal automata need not share a fingerprint, but their
     minimized forms are the canonical minimal DFA and must *)
  List.iter
    (fun s ->
      let x = C.Workload.Gen_afsa.random_protocol ~seed:s ~states:7 () in
      let y = A.copy x in
      let y = A.add_edge y (List.hd (A.states y), lbl "A" "B" "pad", 999) in
      (* the padded branch is dead weight reaching no final state *)
      let mx = C.Minimize.minimize x and my = C.Minimize.minimize y in
      if C.Equiv.equal_annotated mx my then
        check_bool
          (Printf.sprintf "minimized digests canonical (seed %d)" s)
          true (FP.equal mx my))
    (List.init 40 Fun.id)

(* ------------------------------ intern ------------------------------ *)

let test_intern_canonical () =
  let x = C.Workload.Gen_afsa.random ~seed:7 ~states:5 ~ann_p:0.4 () in
  let cx = Intern.canonical x in
  let cy = Intern.canonical (A.copy x) in
  check_bool "structurally equal automata intern to one value" true (cx == cy);
  check_int "one id per structure" (Intern.id cx) (Intern.id (A.copy x));
  check_bool "interned structure is member" true (Intern.mem (A.copy x));
  let z = A.set_finals x [] in
  check_bool "distinct structure, distinct id" false
    (Intern.id z = Intern.id cx)

(* ------------------------ memo differentials ------------------------ *)

let pair_of_seed s =
  ( C.Workload.Gen_afsa.random ~seed:(2 * s) ~states:5 ~ann_p:0.3 (),
    C.Workload.Gen_afsa.random ~seed:((2 * s) + 1) ~states:5 ~ann_p:0.3 () )

let memo_agrees name memo raw =
  List.iter
    (fun s ->
      let a, b = pair_of_seed s in
      (* twice: the second call exercises the hit path *)
      let m1 = memo a b and r = raw a b in
      let m2 = memo (A.copy a) (A.copy b) in
      check_bool
        (Printf.sprintf "%s memo = raw (seed %d)" name s)
        true
        (C.Equiv.equal_annotated m1 r);
      check_bool
        (Printf.sprintf "%s hit = miss (seed %d)" name s)
        true
        (A.structurally_equal m1 m2))
    (List.init n_seeds Fun.id)

let test_memo_binops () =
  memo_agrees "intersect" Memo.intersect C.Ops.intersect;
  memo_agrees "difference" Memo.difference C.Ops.difference;
  memo_agrees "union" Memo.union C.Ops.union

let test_memo_unops_and_tau () =
  List.iter
    (fun s ->
      let x = C.Workload.Gen_afsa.random ~seed:s ~states:6 ~ann_p:0.4 () in
      check_bool
        (Printf.sprintf "minimize memo = raw (seed %d)" s)
        true
        (A.structurally_equal (Memo.minimize x) (C.Minimize.minimize x));
      check_bool
        (Printf.sprintf "determinize memo = raw (seed %d)" s)
        true
        (C.Equiv.equal_annotated (Memo.determinize x) (C.Determinize.determinize x));
      check_bool
        (Printf.sprintf "tau memo = raw (seed %d)" s)
        true
        (A.structurally_equal
           (Memo.tau ~observer:"B" x)
           (C.View.tau ~observer:"B" x)))
    (List.init n_seeds Fun.id)

let test_memo_generate_and_verdict () =
  List.iter
    (fun s ->
      let pa, pb = C.Workload.Gen_process.pair ~seed:s () in
      let ga, _ = Memo.generate pa in
      check_bool
        (Printf.sprintf "generate memo = raw (seed %d)" s)
        true
        (C.Equiv.equal_annotated ga (C.Public_gen.public pa));
      let a = Memo.public pa and b = Memo.public pb in
      let consistent, witness = Memo.check_verdict a b in
      let r = C.Consistency.check a b in
      check_bool
        (Printf.sprintf "verdict memo = raw (seed %d)" s)
        true
        (consistent = r.C.Consistency.consistent
        && witness = r.C.Consistency.witness))
    (List.init 40 Fun.id)

(* Under a limited ambient budget the wrappers must stand down (so fuel
   accounting stays byte-identical with and without caching). *)
let test_memo_inert_under_budget () =
  check_bool "active by default" true (Memo.active ());
  let b =
    C.Guard.Budget.of_spec { C.Guard.Budget.fuel = Some 1_000_000; timeout_s = None }
  in
  match
    C.Guard.Budget.run b (fun () ->
        check_bool "inactive under finite fuel" false (Memo.active ());
        let a, b = pair_of_seed 3 in
        C.Equiv.equal_annotated (Memo.intersect a b) (C.Ops.intersect a b))
  with
  | `Done ok -> check_bool "raw path still correct" true ok
  | `Exceeded _ -> Alcotest.fail "budget tripped unexpectedly"

(* -------------------- eviction + invalidation ----------------------- *)

(* A tiny cache under churn: random sequences of private-process edits,
   with every regeneration checked against the raw generator. Stale
   reuse after an edit would show up as a mismatch; constant eviction
   (the table is far smaller than the working set) must only cost
   recomputation, never correctness. *)
let test_never_stale_under_churn () =
  let rng = Random.State.make [| 0xBEEF |] in
  let procs =
    ref
      (List.init 8 (fun s -> fst (C.Workload.Gen_process.pair ~seed:s ())))
  in
  for step = 1 to 60 do
    let i = Random.State.int rng (List.length !procs) in
    let p = List.nth !procs i in
    (* mutate: apply a random valid change op when one exists *)
    let p' =
      let op =
        if Random.State.bool rng then
          C.Workload.Gen_change.additive ~seed:step p
        else C.Workload.Gen_change.subtractive ~seed:step p
      in
      match op with
      | None -> p
      | Some op -> (
          match C.Change.Ops.apply op p with Ok q -> q | Error _ -> p)
    in
    procs := List.mapi (fun j q -> if j = i then p' else q) !procs;
    List.iter
      (fun q ->
        check_bool
          (Printf.sprintf "memo public fresh after edit (step %d)" step)
          true
          (C.Equiv.equal_annotated (Memo.public q) (C.Public_gen.public q)))
      !procs
  done

(* ----------------- cached vs uncached end-to-end -------------------- *)

(* Verdicts hold automata, whose cached-digest field differs between
   cached and raw runs; project them down to plain data plus the
   structural content of added/removed. *)
let project_verdict (v : C.Change.Classify.verdict) =
  ( v.partner,
    v.framework.additive,
    v.framework.subtractive,
    FP.digest v.framework.added,
    FP.digest v.framework.removed,
    v.propagation )

let project (r : C.Choreography.Evolution.report) =
  ( r.consistent,
    List.map
      (fun (rd : C.Choreography.Evolution.round) ->
        ( rd.originator,
          rd.public_changed,
          List.map
            (fun (p : C.Choreography.Evolution.partner_report) ->
              (p.partner, project_verdict p.verdict, Option.is_some p.outcome))
            rd.partners ))
      r.rounds )

let publics_of (r : C.Choreography.Evolution.report) =
  List.map
    (fun p -> C.Choreography.Model.public r.choreography p)
    (C.Choreography.Model.parties r.choreography)

let privates_of (r : C.Choreography.Evolution.report) =
  List.map
    (fun p -> C.Choreography.Model.private_ r.choreography p)
    (C.Choreography.Model.parties r.choreography)

let test_evolution_cached_equals_uncached () =
  let model =
    C.Choreography.Model.of_processes
      (List.map snd C.Scenario.Procurement.parties)
  in
  let run ~cache ~jobs ~handle =
    let config = { C.Choreography.Evolution.default with jobs; cache } in
    match
      C.Choreography.Evolution.run ~config ?cache:handle model ~owner:"A"
        ~changed:C.Scenario.Procurement.accounting_cancel
    with
    | Ok r -> r
    | Error (`Unknown_party p) -> Alcotest.failf "unknown party %s" p
  in
  let baseline = run ~cache:false ~jobs:1 ~handle:None in
  List.iter
    (fun jobs ->
      let handle = C.Choreography.Evolution.Cache.create () in
      (* twice with one handle: the second run replays entirely from
         the step cache and must still match the uncached baseline *)
      let first = run ~cache:true ~jobs ~handle:(Some handle) in
      let second = run ~cache:true ~jobs ~handle:(Some handle) in
      List.iter
        (fun (name, r) ->
          check_bool
            (Printf.sprintf "%s report = uncached (jobs=%d)" name jobs)
            true
            (project r = project baseline);
          check_bool
            (Printf.sprintf "%s publics = uncached (jobs=%d)" name jobs)
            true
            (List.for_all2 A.structurally_equal (publics_of r)
               (publics_of baseline));
          check_bool
            (Printf.sprintf "%s privates = uncached (jobs=%d)" name jobs)
            true
            (privates_of r = privates_of baseline))
        [ ("cached-cold", first); ("cached-warm", second) ];
      let steps = List.assoc "steps" (C.Choreography.Evolution.Cache.stats handle) in
      check_bool
        (Printf.sprintf "warm run reused steps (jobs=%d)" jobs)
        true (steps.Lru.hits > 0))
    [ 1; 2; 8 ]

let test_check_all_session () =
  let hub_p, spokes = C.Workload.Scale.hub 5 in
  let model = C.Choreography.Model.of_processes (hub_p :: spokes) in
  let plain = C.Choreography.Consistency.check_all model in
  let session = C.Cache.Session.create () in
  let first = C.Choreography.Consistency.check_all ~cache:true ~session model in
  let second = C.Choreography.Consistency.check_all ~cache:true ~session model in
  check_bool "session first = plain" true (first = plain);
  check_bool "session warm = plain" true (second = plain);
  let s = C.Cache.Session.stats session in
  check_int "warm pass all hits" (List.length plain) s.Lru.hits

(* --------------------- discovery by fingerprint --------------------- *)

let test_discovery_fingerprint_keys () =
  let reg = C.Discovery.create () in
  let pa = fst (C.Workload.Scale.ladder 3) in
  let pb = fst (C.Workload.Scale.service_loop 3) in
  C.Discovery.advertise_process reg ~name:"svc-a" pa;
  C.Discovery.advertise_process reg ~name:"svc-b" pb;
  (* a structurally equal re-derivation finds the entry by fingerprint *)
  let pub_a = C.Public_gen.public pa in
  (match C.Discovery.find_by_structure reg pub_a with
  | [ e ] ->
      Alcotest.(check string) "found by structure" "svc-a" e.C.Discovery.name;
      check_bool "entry fingerprint matches lookup key" true
        (String.equal (C.Discovery.fingerprint e) (FP.digest pub_a))
  | es -> Alcotest.failf "expected one structural match, got %d" (List.length es));
  check_bool "mem_structure positive" true (C.Discovery.mem_structure reg pub_a);
  let stranger = C.Public_gen.public (fst (C.Workload.Scale.menu 4)) in
  check_bool "mem_structure negative" false
    (C.Discovery.mem_structure reg stranger);
  (* advertising structurally equal publics interns them to one value *)
  C.Discovery.advertise reg ~name:"svc-a2" ~party:"A" (C.Public_gen.public pa);
  match C.Discovery.find_by_structure reg pub_a with
  | [ e1; e2 ] ->
      check_bool "equal structures share one interned automaton" true
        (e1.C.Discovery.public == e2.C.Discovery.public)
  | es -> Alcotest.failf "expected two structural matches, got %d" (List.length es)

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
          Alcotest.test_case "model property" `Quick test_lru_model_property;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "structural" `Quick test_fingerprint_structural;
          Alcotest.test_case "invalidation" `Quick test_fingerprint_invalidation;
          Alcotest.test_case "minimize canonical" `Quick
            test_fingerprint_minimize_canonical;
        ] );
      ("intern", [ Alcotest.test_case "canonical" `Quick test_intern_canonical ]);
      ( "memo vs raw",
        [
          Alcotest.test_case "binops" `Quick test_memo_binops;
          Alcotest.test_case "unops and tau" `Quick test_memo_unops_and_tau;
          Alcotest.test_case "generate and verdict" `Quick
            test_memo_generate_and_verdict;
          Alcotest.test_case "inert under budget" `Quick
            test_memo_inert_under_budget;
        ] );
      ( "churn",
        [
          Alcotest.test_case "never stale under churn" `Quick
            test_never_stale_under_churn;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "evolution cached = uncached" `Quick
            test_evolution_cached_equals_uncached;
          Alcotest.test_case "check_all session" `Quick test_check_all_session;
        ] );
      ( "discovery",
        [
          Alcotest.test_case "fingerprint keys" `Quick
            test_discovery_fingerprint_keys;
        ] );
    ]
