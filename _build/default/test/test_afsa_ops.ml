(* The aFSA algebra: intersection (Def. 3), difference (Def. 4), union,
   complement, language equivalence — unit cases plus word-level
   properties on random automata. *)

module C = Chorev
module A = C.Afsa
module F = C.Formula

let afsa ?ann ?alphabet ~start ~finals edges =
  A.of_strings ?alphabet ~start ~finals ~edges ?ann ()

let l = C.Label.of_string_exn
let word = List.map l
let check_bool = Alcotest.(check bool)

let ab = afsa ~start:0 ~finals:[ 2 ] [ (0, "A#B#x", 1); (1, "B#A#y", 2) ]

let ab_or_c =
  afsa ~start:0 ~finals:[ 2; 3 ]
    [ (0, "A#B#x", 1); (1, "B#A#y", 2); (0, "A#B#z", 3) ]

(* --------------------------- intersection ------------------------- *)

let test_intersect_language () =
  let i = C.Ops.intersect ab ab_or_c in
  check_bool "xy in both" true (C.Trace.accepts i (word [ "A#B#x"; "B#A#y" ]));
  check_bool "z not shared" false (C.Trace.accepts i (word [ "A#B#z" ]));
  (* alphabet is the intersection *)
  Alcotest.(check int) "alphabet" 2 (List.length (A.alphabet i))

let test_intersect_annotations_conj () =
  let a1 =
    afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] ~ann:[ (0, F.var "A#B#x") ]
  in
  let a2 =
    afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] ~ann:[ (0, F.var "A#B#y") ]
  in
  let i = C.Ops.intersect a1 a2 in
  check_bool "conjunction" true
    (F.Sat.equivalent
       (A.annotation i (A.start i))
       (F.and_ (F.var "A#B#x") (F.var "A#B#y")))

let test_intersect_with_eps () =
  (* ε on one side interleaves *)
  let a1 = afsa ~start:0 ~finals:[ 2 ] [ (0, "", 1); (1, "A#B#x", 2) ] in
  let i = C.Ops.intersect a1 ab in
  check_bool "x through eps" true (C.Trace.accepts i (word [ "A#B#x" ])= false);
  (* ab needs y after x; intersection of languages {x} ∩ {xy} = ∅ *)
  check_bool "no common word" true (C.Emptiness.is_empty_plain (A.trim i))

(* ---------------------------- difference -------------------------- *)

let test_difference () =
  let d = C.Ops.difference ab_or_c ab in
  check_bool "z removed? no — z is the difference" true
    (C.Trace.accepts d (word [ "A#B#z" ]));
  check_bool "xy not in difference" false
    (C.Trace.accepts d (word [ "A#B#x"; "B#A#y" ]));
  let d2 = C.Ops.difference ab ab_or_c in
  check_bool "A ⊆ B ⇒ empty difference" true (C.Emptiness.is_empty_plain d2)

let test_difference_keeps_left_annotations () =
  let a1 =
    afsa ~start:0 ~finals:[ 1 ]
      [ (0, "A#B#x", 1); (0, "A#B#z", 1) ]
      ~ann:[ (0, F.var "A#B#x") ]
  in
  let a2 = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  let d = C.Ops.difference a1 a2 in
  (* start annotation comes from a1 only *)
  check_bool "left annotation kept" true
    (F.Sat.equivalent (A.annotation d (A.start d)) (F.var "A#B#x"))

let test_difference_outside_alphabet () =
  (* the paper's Fig. 13a: symbols unknown to B survive A \ B *)
  let a1 = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#cancelOp", 1) ] in
  let b = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#deliveryOp", 1) ] in
  let d = C.Ops.difference a1 b in
  check_bool "cancel survives" true (C.Trace.accepts d (word [ "A#B#cancelOp" ]))

(* ------------------------------ union ----------------------------- *)

let test_union () =
  let u = C.Ops.union ab ab_or_c in
  check_bool "xy" true (C.Trace.accepts u (word [ "A#B#x"; "B#A#y" ]));
  check_bool "z" true (C.Trace.accepts u (word [ "A#B#z" ]));
  check_bool "x alone rejected" false (C.Trace.accepts u (word [ "A#B#x" ]))

let test_union_de_morgan_equivalent () =
  let u1 = C.Ops.union ab ab_or_c in
  let u2 = C.Ops.union_de_morgan ab ab_or_c in
  check_bool "same language" true (C.Equiv.equal_language u1 u2)

let test_union_preserves_annotations () =
  (* Fig. 13b: both sides' obligations survive the union *)
  let a1 =
    afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] ~ann:[ (0, F.var "A#B#x") ]
  in
  let a2 =
    afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#z", 1) ] ~ann:[ (0, F.var "A#B#z") ]
  in
  let u = C.Ops.union a1 a2 in
  check_bool "conjoined obligations" true
    (F.Sat.equivalent
       (A.annotation u (A.start u))
       (F.and_ (F.var "A#B#x") (F.var "A#B#z")))

(* ---------------------------- complement -------------------------- *)

let test_complement () =
  let c = C.Ops.complement ab in
  check_bool "xy excluded" false (C.Trace.accepts c (word [ "A#B#x"; "B#A#y" ]));
  check_bool "x alone included" true (C.Trace.accepts c (word [ "A#B#x" ]));
  check_bool "empty word included" true (C.Trace.accepts c []);
  let cc = C.Ops.complement c in
  check_bool "double complement" true (C.Equiv.equal_language cc ab)

(* ------------------------------ equiv ----------------------------- *)

let test_equiv () =
  check_bool "self" true (C.Equiv.equal_language ab ab);
  check_bool "subset" true (C.Equiv.included ab ab_or_c);
  check_bool "not superset" false (C.Equiv.included ab_or_c ab);
  check_bool "strict" true (C.Equiv.strictly_includes ab_or_c ab);
  let m1 = C.Minimize.minimize ab and m2 = C.Minimize.minimize ab in
  check_bool "annotated equal" true (C.Equiv.equal_annotated m1 m2)

(* --------------------------- properties --------------------------- *)

let arb_afsa =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
    QCheck.Gen.(int_bound 10_000)

let gen seed = C.Workload.Gen_afsa.random ~seed ~states:6 ()

let words a =
  C.Trace.enumerate ~limit:200 ~max_len:4 a |> List.sort_uniq compare

let prop_intersection_is_conjunction =
  QCheck.Test.make ~name:"w ∈ L(A∩B) ⟺ w ∈ L(A) ∧ w ∈ L(B)" ~count:60
    (QCheck.pair arb_afsa arb_afsa) (fun (s1, s2) ->
      let a = gen s1 and b = gen (s2 + 20_000) in
      let i = C.Ops.intersect a b in
      List.for_all
        (fun w ->
          C.Trace.accepts i w = (C.Trace.accepts a w && C.Trace.accepts b w))
        (words a @ words b @ words i))

let prop_difference_is_subtraction =
  QCheck.Test.make ~name:"w ∈ L(A∖B) ⟺ w ∈ L(A) ∧ w ∉ L(B)" ~count:60
    (QCheck.pair arb_afsa arb_afsa) (fun (s1, s2) ->
      let a = gen s1 and b = gen (s2 + 40_000) in
      let d = C.Ops.difference a b in
      List.for_all
        (fun w ->
          C.Trace.accepts d w = (C.Trace.accepts a w && not (C.Trace.accepts b w)))
        (words a @ words b @ words d))

let prop_union_is_disjunction =
  QCheck.Test.make ~name:"w ∈ L(A∪B) ⟺ w ∈ L(A) ∨ w ∈ L(B)" ~count:60
    (QCheck.pair arb_afsa arb_afsa) (fun (s1, s2) ->
      let a = gen s1 and b = gen (s2 + 60_000) in
      let u = C.Ops.union a b in
      List.for_all
        (fun w ->
          C.Trace.accepts u w = (C.Trace.accepts a w || C.Trace.accepts b w))
        (words a @ words b @ words u))

let prop_determinize_preserves =
  QCheck.Test.make ~name:"determinization preserves the language" ~count:60
    arb_afsa (fun s ->
      let a = gen s in
      let d = C.Determinize.determinize a in
      A.is_deterministic d
      && List.for_all
           (fun w -> C.Trace.accepts a w = C.Trace.accepts d w)
           (words a @ words d))

let prop_minimize_preserves =
  QCheck.Test.make ~name:"minimization preserves the language" ~count:60
    arb_afsa (fun s ->
      let a = gen s in
      let m = C.Minimize.minimize a in
      List.for_all
        (fun w -> C.Trace.accepts a w = C.Trace.accepts m w)
        (words a @ words m))

let prop_minimize_not_larger =
  QCheck.Test.make ~name:"minimization does not grow determinized size"
    ~count:60 arb_afsa (fun s ->
      let a = gen s in
      let d = C.Complete.complete (C.Determinize.determinize a) in
      A.num_states (C.Minimize.minimize a) <= A.num_states d)

let prop_de_morgan =
  QCheck.Test.make ~name:"union = De-Morgan union (language)" ~count:40
    (QCheck.pair arb_afsa arb_afsa) (fun (s1, s2) ->
      let a = gen s1 and b = gen (s2 + 80_000) in
      C.Equiv.equal_language (C.Ops.union a b) (C.Ops.union_de_morgan a b))

let () =
  Alcotest.run "afsa-ops"
    [
      ( "intersection",
        [
          Alcotest.test_case "language" `Quick test_intersect_language;
          Alcotest.test_case "annotation conjunction" `Quick
            test_intersect_annotations_conj;
          Alcotest.test_case "with eps" `Quick test_intersect_with_eps;
        ] );
      ( "difference",
        [
          Alcotest.test_case "language" `Quick test_difference;
          Alcotest.test_case "keeps left annotations" `Quick
            test_difference_keeps_left_annotations;
          Alcotest.test_case "outside alphabet (Fig 13a)" `Quick
            test_difference_outside_alphabet;
        ] );
      ( "union",
        [
          Alcotest.test_case "language" `Quick test_union;
          Alcotest.test_case "de morgan equivalent" `Quick
            test_union_de_morgan_equivalent;
          Alcotest.test_case "preserves annotations (Fig 13b)" `Quick
            test_union_preserves_annotations;
        ] );
      ( "complement",
        [ Alcotest.test_case "complement" `Quick test_complement ] );
      ("equiv", [ Alcotest.test_case "equalities" `Quick test_equiv ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_intersection_is_conjunction;
            prop_difference_is_subtraction;
            prop_union_is_disjunction;
            prop_determinize_preserves;
            prop_minimize_preserves;
            prop_minimize_not_larger;
            prop_de_morgan;
          ] );
    ]
