(* The synchronous execution engine and its conformance with the
   static theory. *)

module C = Chorev
module A = C.Afsa
module Ex = C.Runtime.Exec
module Cf = C.Runtime.Conformance
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let l = C.Label.of_string_exn

let afsa ?ann ~start ~finals edges =
  A.of_strings ~start ~finals ~edges ?ann ()

(* A happily matching pair: A sends x, B receives x. *)
let happy_a = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ]
let happy_pair = [ ("A", happy_a); ("B", happy_a) ]

(* A deadlocking pair: A wants to send x, B expects y. *)
let dead_b = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#y", 1) ]
let dead_pair = [ ("A", happy_a); ("B", dead_b) ]

let test_initial_enabled () =
  let s = Ex.make happy_pair in
  let c0 = Ex.initial s in
  check_int "two parties" 2 (List.length c0);
  let moves = Ex.enabled c0 in
  check_int "one move" 1 (List.length moves);
  let lab, c1 = List.hd moves in
  Alcotest.(check string) "label" "A#B#x" (C.Label.to_string lab);
  check_bool "completed after" true (Ex.completed c1);
  check_bool "status completed" true (Ex.status c1 = Ex.Completed)

let test_deadlock_detection () =
  let s = Ex.make dead_pair in
  let c0 = Ex.initial s in
  check_int "no moves" 0 (List.length (Ex.enabled c0));
  check_bool "deadlock" true (Ex.status c0 = Ex.Deadlock);
  let e = Ex.explore s in
  check_int "one deadlock" 1 (List.length e.Ex.deadlocks);
  check_int "no completion" 0 e.Ex.completions;
  check_bool "deadlock_free false" false (Ex.deadlock_free s);
  check_bool "can_complete false" false (Ex.can_complete s)

let test_explore_procurement () =
  let sys =
    Ex.make
      (List.map (fun (p, proc) -> (p, C.Public_gen.public proc)) P.parties)
  in
  let e = Ex.explore sys in
  check_bool "no deadlock" true (e.Ex.deadlocks = []);
  check_bool "completes" true (e.Ex.completions > 0);
  check_bool "not truncated" false e.Ex.truncated;
  check_bool "explores loop states" true (e.Ex.configurations >= 10)

let test_external_labels_not_enabled () =
  (* a label whose receiver is not part of the system cannot fire *)
  let a = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#X#m", 1) ] in
  let s = Ex.make [ ("A", a) ] in
  check_int "nothing enabled" 0 (List.length (Ex.enabled (Ex.initial s)))

let test_random_run_deterministic () =
  let sys =
    Ex.make
      (List.map (fun (p, proc) -> (p, C.Public_gen.public proc)) P.parties)
  in
  let r1 = Ex.random_run ~seed:7 sys in
  let r2 = Ex.random_run ~seed:7 sys in
  check_bool "same trace for same seed" true
    (List.equal C.Label.equal r1.Ex.trace r2.Ex.trace);
  check_bool "terminates sensibly" true
    (match r1.Ex.outcome with Ex.Completed | Ex.Running -> true | Ex.Deadlock -> false)

let test_random_run_hits_deadlock () =
  let r = Ex.random_run ~seed:1 (Ex.make dead_pair) in
  check_bool "deadlock observed" true (r.Ex.outcome = Ex.Deadlock);
  check_int "empty trace" 0 (List.length r.Ex.trace)

let test_explore_truncation () =
  (* a huge shuffle product trips the bound *)
  let pa, pb = C.Workload.Scale.ladder 30 in
  let sys = Ex.make [ ("A", C.Public_gen.public pa); ("B", C.Public_gen.public pb) ] in
  let e = Ex.explore ~max_configs:10 sys in
  check_bool "truncated" true e.Ex.truncated

let test_three_party_sync_op () =
  (* the synchronous logistics op executes as two joint steps *)
  let sys =
    Ex.make
      (List.map (fun (p, proc) -> (p, C.Public_gen.public proc)) P.parties)
  in
  let trace =
    List.map l
      [
        "B#A#orderOp"; "A#L#deliverOp"; "L#A#deliver_confOp";
        "A#B#deliveryOp"; "B#A#get_statusOp"; "A#L#get_statusLOp";
        "L#A#get_statusLOp"; "A#B#statusOp"; "B#A#terminateOp";
        "A#L#terminateLOp";
      ]
  in
  check_bool "sync round replays" true (Cf.monitor sys trace = Cf.Accepted)

(* ---------------------------- monitor ------------------------------ *)

let test_monitor () =
  let sys = Ex.make happy_pair in
  check_bool "accepted" true (Cf.monitor sys [ l "A#B#x" ] = Cf.Accepted);
  check_bool "incomplete" true (Cf.monitor sys [] = Cf.Incomplete);
  (match Cf.monitor sys [ l "A#B#z" ] with
  | Cf.Violated { at = 0; _ } -> ()
  | _ -> Alcotest.fail "expected violation at 0");
  (* procurement happy path replays *)
  let psys =
    Ex.make
      (List.map (fun (p, proc) -> (p, C.Public_gen.public proc)) P.parties)
  in
  let trace =
    List.map l
      [
        "B#A#orderOp";
        "A#L#deliverOp";
        "L#A#deliver_confOp";
        "A#B#deliveryOp";
        "B#A#terminateOp";
        "A#L#terminateLOp";
      ]
  in
  check_bool "procurement trace accepted" true
    (Cf.monitor psys trace = Cf.Accepted)

(* --------------------------- conformance --------------------------- *)

let test_conformance_plain () =
  let v = Cf.check happy_a happy_a in
  check_bool "consistent" true v.Cf.consistent;
  check_bool "can complete" true v.Cf.can_complete;
  check_bool "agree" true v.Cf.agree;
  let v2 = Cf.check happy_a dead_b in
  check_bool "inconsistent" false v2.Cf.consistent;
  check_bool "cannot complete" false v2.Cf.can_complete;
  check_bool "agree" true v2.Cf.agree

let test_annotated_deadlock_free () =
  (* fig5: plain reachability says fine, annotations say deadlock *)
  let sys5 =
    Ex.make [ ("A", C.Scenario.Fig5.party_a); ("B", C.Scenario.Fig5.party_b) ]
  in
  check_bool "fig5 not annotated-deadlock-free" false
    (Cf.annotated_deadlock_free sys5);
  let vb = C.Public_gen.public P.buyer_process in
  let va =
    C.View.tau ~observer:"B" (C.Public_gen.public P.accounting_process)
  in
  check_bool "buyer/accounting fine" true
    (Cf.annotated_deadlock_free (Ex.make [ ("B", vb); ("A", va) ]))

let test_witness_replays () =
  let vb = C.Public_gen.public P.buyer_process in
  let va =
    C.View.tau ~observer:"B" (C.Public_gen.public P.accounting_process)
  in
  check_bool "witness is executable" true
    (Cf.witness_replays ~party_a:"B" ~party_b:"A" vb va)

let () =
  Alcotest.run "runtime"
    [
      ( "exec",
        [
          Alcotest.test_case "initial/enabled" `Quick test_initial_enabled;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detection;
          Alcotest.test_case "explore procurement" `Quick
            test_explore_procurement;
          Alcotest.test_case "external labels" `Quick
            test_external_labels_not_enabled;
          Alcotest.test_case "random run deterministic" `Quick
            test_random_run_deterministic;
          Alcotest.test_case "random run deadlock" `Quick
            test_random_run_hits_deadlock;
          Alcotest.test_case "explore truncation" `Quick
            test_explore_truncation;
          Alcotest.test_case "sync op joint steps" `Quick
            test_three_party_sync_op;
        ] );
      ("monitor", [ Alcotest.test_case "replay" `Quick test_monitor ]);
      ( "conformance",
        [
          Alcotest.test_case "plain" `Quick test_conformance_plain;
          Alcotest.test_case "annotated deadlock freedom" `Quick
            test_annotated_deadlock_free;
          Alcotest.test_case "witness replays" `Quick test_witness_replays;
        ] );
    ]
