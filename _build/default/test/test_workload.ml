(* Synthetic workload generators: determinism per seed, validity and
   consistency-by-construction of the generated artifacts. *)

module C = Chorev
module A = C.Afsa
module GA = C.Workload.Gen_afsa
module GP = C.Workload.Gen_process
module GC = C.Workload.Gen_change
module Sc = C.Workload.Scale

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen = C.Public_gen.public

let test_gen_afsa_deterministic () =
  let a = GA.random ~seed:5 ~states:8 () in
  let b = GA.random ~seed:5 ~states:8 () in
  check_bool "same seed same automaton" true (A.structurally_equal a b);
  let c = GA.random ~seed:6 ~states:8 () in
  check_bool "different seed different automaton" false
    (A.structurally_equal a c)

let test_gen_afsa_shape () =
  let a = GA.random ~seed:1 ~states:10 ~labels:4 () in
  check_bool "has states" true (A.num_states a >= 1);
  check_int "alphabet size" 4 (List.length (A.alphabet a));
  check_bool "has finals" true (A.finals a <> [])

let test_gen_protocol_live () =
  (* protocol-shaped automata accept at least the backbone word *)
  for seed = 0 to 9 do
    let a = GA.random_protocol ~seed ~states:12 () in
    check_bool
      (Printf.sprintf "seed %d nonempty" seed)
      false
      (C.Emptiness.is_empty_plain a)
  done

let test_gen_pair_consistent_many_seeds () =
  for seed = 0 to 14 do
    let pa, pb = GP.pair ~seed () in
    check_bool
      (Printf.sprintf "seed %d valid A" seed)
      true
      (C.Bpel.Validate.check pa
      |> List.for_all (fun (i : C.Bpel.Validate.issue) ->
             (* generated names may repeat across branches; only
                operation errors are fatal *)
             not
               (String.length i.message >= 9
               && String.sub i.message 0 9 = "operation")));
    check_bool
      (Printf.sprintf "seed %d consistent" seed)
      true
      (C.Consistency.consistent (gen pa) (gen pb))
  done

let test_gen_pair_deterministic () =
  let a1, b1 = GP.pair ~seed:3 () in
  let a2, b2 = GP.pair ~seed:3 () in
  check_bool "same A" true
    (C.Bpel.Activity.equal (C.Bpel.Process.body a1) (C.Bpel.Process.body a2));
  check_bool "same B" true
    (C.Bpel.Activity.equal (C.Bpel.Process.body b1) (C.Bpel.Process.body b2))

let test_gen_change_applies () =
  let pa, _ = GP.pair ~seed:11 () in
  (match GC.additive ~seed:1 pa with
  | Some op ->
      check_bool "additive applies" true
        (Result.is_ok (C.Change.Ops.apply op pa))
  | None -> Alcotest.fail "expected an additive change");
  match GC.subtractive ~seed:1 pa with
  | Some op ->
      check_bool "subtractive applies" true
        (Result.is_ok (C.Change.Ops.apply op pa))
  | None -> ()

(* ------------------------------ scale ------------------------------ *)

let test_ladder () =
  let a, b = Sc.ladder 15 in
  let pa = gen a and pb = gen b in
  check_int "ladder states" 31 (A.num_states pa);
  check_bool "consistent" true (C.Consistency.consistent pa pb)

let test_menu () =
  let a, b = Sc.menu 8 in
  let pa = gen a and pb = gen b in
  check_bool "consistent" true (C.Consistency.consistent pa pb);
  (* the menu annotation is an 8-way conjunction *)
  check_int "annotation size" 8
    (List.length (C.Formula.vars_list (A.annotation pa (A.start pa))));
  (* removing one dish from B's pick breaks consistency *)
  let b' =
    C.Bpel.Process.with_body b
      (C.Bpel.Activity.seq "menuB"
         [
           C.Bpel.Activity.pick "serve"
             (List.init 7 (fun i ->
                  C.Bpel.Activity.on_message ~partner:"A"
                    ~op:(Printf.sprintf "alt%dOp" i) C.Bpel.Activity.Empty));
         ])
  in
  check_bool "missing alternative breaks" false
    (C.Consistency.consistent pa (gen b'))

let test_service_loop () =
  let a, b = Sc.service_loop 4 in
  check_bool "consistent" true (C.Consistency.consistent (gen a) (gen b))

let test_hub () =
  let h, spokes = Sc.hub 5 in
  check_int "spokes" 5 (List.length spokes);
  let t = C.Choreography.Model.of_processes (h :: spokes) in
  check_bool "all pairs consistent" true (C.Choreography.Consistency.consistent t);
  check_int "hub interacts with all" 5
    (List.length (C.Choreography.Model.pairs t))

let () =
  Alcotest.run "workload"
    [
      ( "afsa",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_afsa_deterministic;
          Alcotest.test_case "shape" `Quick test_gen_afsa_shape;
          Alcotest.test_case "protocol live" `Quick test_gen_protocol_live;
        ] );
      ( "process pairs",
        [
          Alcotest.test_case "consistent across seeds" `Quick
            test_gen_pair_consistent_many_seeds;
          Alcotest.test_case "deterministic" `Quick test_gen_pair_deterministic;
          Alcotest.test_case "changes apply" `Quick test_gen_change_applies;
        ] );
      ( "scale",
        [
          Alcotest.test_case "ladder" `Quick test_ladder;
          Alcotest.test_case "menu" `Quick test_menu;
          Alcotest.test_case "service loop" `Quick test_service_loop;
          Alcotest.test_case "hub" `Quick test_hub;
        ] );
    ]
