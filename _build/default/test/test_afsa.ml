(* Core aFSA structure, ε-elimination, determinization, completion and
   minimization. *)

module C = Chorev
module A = C.Afsa
module F = C.Formula

let afsa ?ann ?alphabet ~start ~finals edges =
  A.of_strings ?alphabet ~start ~finals ~edges ?ann ()

let l s = C.Label.of_string_exn s
let word = List.map l

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --------------------------- construction ------------------------- *)

let test_make () =
  let a = afsa ~start:0 ~finals:[ 2 ] [ (0, "A#B#x", 1); (1, "B#A#y", 2) ] in
  check_int "states" 3 (A.num_states a);
  check_int "edges" 2 (A.num_edges a);
  check_int "start" 0 (A.start a);
  check_bool "final" true (A.is_final a 2);
  check_bool "not final" false (A.is_final a 0);
  check_int "alphabet" 2 (List.length (A.alphabet a));
  check_bool "deterministic" true (A.is_deterministic a)

let test_annotations () =
  let a =
    afsa ~start:0 ~finals:[ 1 ]
      [ (0, "A#B#x", 1) ]
      ~ann:[ (0, F.var "A#B#x"); (1, F.True) ]
  in
  check_bool "ann set" true (F.equal (A.annotation a 0) (F.var "A#B#x"));
  check_bool "true ann dropped" true (F.equal (A.annotation a 1) F.True);
  check_bool "has ann" true (A.has_annotations a);
  let b = A.clear_annotations a in
  check_bool "cleared" false (A.has_annotations b)

let test_step_out () =
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "A#B#x", 1); (0, "A#B#x", 2); (0, "", 2); (1, "B#A#y", 2) ]
  in
  check_bool "nondeterministic" false (A.is_deterministic a);
  check_bool "has eps" true (A.has_eps a);
  check_int "step targets" 2
    (A.ISet.cardinal (A.step a 0 (C.Sym.L (l "A#B#x"))));
  check_int "out edges" 3 (List.length (A.out_edges a 0));
  check_int "out symbols" 1 (C.Label.Set.cardinal (A.out_symbols a 0))

let test_reachability_trim () =
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "A#B#x", 1); (1, "B#A#y", 2); (3, "A#B#x", 2); (1, "A#B#z", 4) ]
  in
  (* 3 unreachable; 4 dead *)
  check_int "reachable" 4 (A.ISet.cardinal (A.reachable_from a 0));
  let t = A.trim a in
  check_int "trimmed states" 3 (A.num_states t);
  check_bool "kept language" true (C.Trace.accepts t (word [ "A#B#x"; "B#A#y" ]))

let test_renumber () =
  let a = afsa ~start:5 ~finals:[ 9 ] [ (5, "A#B#x", 9) ] in
  let b, _ = A.renumber a in
  check_int "start is 0" 0 (A.start b);
  check_bool "same language" true (C.Trace.accepts b (word [ "A#B#x" ]))

let test_structural_equal () =
  let a = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  let b = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  let c = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#y", 1) ] in
  check_bool "equal" true (A.structurally_equal a b);
  check_bool "not equal" false (A.structurally_equal a c)

(* ------------------------------ labels ---------------------------- *)

let test_label_parse () =
  check_bool "ok" true (Result.is_ok (C.Label.of_string "A#B#m"));
  check_bool "two segments" true (Result.is_error (C.Label.of_string "A#B"));
  check_bool "four segments" true
    (Result.is_error (C.Label.of_string "A#B#m#x"));
  check_bool "empty sender" true (Result.is_error (C.Label.of_string "#B#m"));
  check_bool "empty msg" true (Result.is_error (C.Label.of_string "A#B#"));
  let lb = l "A#B#m" in
  Alcotest.(check string) "roundtrip" "A#B#m" (C.Label.to_string lb);
  check_bool "involves A" true (C.Label.involves "A" lb);
  check_bool "involves B" true (C.Label.involves "B" lb);
  check_bool "not C" false (C.Label.involves "C" lb);
  check_bool "counterparty" true (C.Label.counterparty "A" lb = Some "B");
  check_bool "counterparty none" true (C.Label.counterparty "X" lb = None)

let test_sym () =
  check_bool "eps" true (C.Sym.is_eps C.Sym.eps);
  check_bool "label not eps" false (C.Sym.is_eps (C.Sym.label (l "A#B#m")));
  check_bool "to_label" true (C.Sym.to_label C.Sym.eps = None);
  Alcotest.(check string) "to_string" "ε" (C.Sym.to_string C.Sym.eps);
  Alcotest.(check string)
    "label string" "A#B#m"
    (C.Sym.to_string (C.Sym.of_label_string "A#B#m"))

let test_modification () =
  let a = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  let a = A.add_edge a (1, C.Sym.L (l "B#A#y"), 0) in
  check_int "edge added" 2 (A.num_edges a);
  check_int "alphabet widened by edge" 2 (List.length (A.alphabet a));
  let a = A.widen_alphabet a [ l "A#B#z" ] in
  check_int "alphabet widened" 3 (List.length (A.alphabet a));
  let a = A.set_annotation a 0 (F.var "A#B#x") in
  check_bool "ann set" true (A.has_annotations a);
  let a = A.set_annotation a 0 F.True in
  check_bool "true ann removes entry" false (A.has_annotations a);
  let a = A.set_finals a [ 0 ] in
  check_bool "finals replaced" true (A.is_final a 0 && not (A.is_final a 1))

let test_coreachable () =
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "A#B#x", 1); (1, "A#B#x", 2); (0, "A#B#y", 3) ]
  in
  let co = A.coreachable a in
  check_bool "0,1,2 coreachable" true
    (A.ISet.mem 0 co && A.ISet.mem 1 co && A.ISet.mem 2 co);
  check_bool "3 dead" false (A.ISet.mem 3 co)

(* ------------------------------ epsilon --------------------------- *)

let test_eps_closure () =
  let a =
    afsa ~start:0 ~finals:[ 3 ]
      [ (0, "", 1); (1, "", 2); (2, "A#B#x", 3); (1, "A#B#y", 3) ]
  in
  let cl = C.Epsilon.closure_of a 0 in
  check_int "closure size" 3 (A.ISet.cardinal cl)

let test_eps_eliminate () =
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "", 1); (1, "A#B#x", 2); (2, "", 0) ]
      ~ann:[ (1, F.var "A#B#x") ]
  in
  let e = C.Epsilon.eliminate a in
  check_bool "no eps" false (A.has_eps e);
  check_bool "accepts x" true (C.Trace.accepts e (word [ "A#B#x" ]));
  check_bool "accepts xx" true (C.Trace.accepts e (word [ "A#B#x"; "A#B#x" ]));
  check_bool "rejects empty? no: final via eps" true
    (C.Trace.accepts e []= false);
  (* state 0 inherits state 1's annotation through the ε-closure *)
  check_bool "ann merged" true (F.equal (A.annotation e 0) (F.var "A#B#x"))

let test_eps_final_through_closure () =
  let a = afsa ~start:0 ~finals:[ 1 ] [ (0, "", 1) ] in
  let e = C.Epsilon.eliminate a in
  check_bool "empty word accepted" true (C.Trace.accepts e [])

(* ---------------------------- determinize ------------------------- *)

let test_determinize () =
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "A#B#x", 1); (0, "A#B#x", 2); (1, "B#A#y", 2) ]
  in
  let d = C.Determinize.determinize a in
  check_bool "deterministic" true (A.is_deterministic d);
  check_bool "accepts x" true (C.Trace.accepts d (word [ "A#B#x" ]));
  check_bool "accepts xy" true (C.Trace.accepts d (word [ "A#B#x"; "B#A#y" ]));
  check_bool "rejects y" false (C.Trace.accepts d (word [ "B#A#y" ]))

let test_determinize_ann_disjunction () =
  (* two ndet targets with different annotations: subset gets the ∨ *)
  let a =
    afsa ~start:0 ~finals:[ 3 ]
      [ (0, "A#B#x", 1); (0, "A#B#x", 2); (1, "A#B#y", 3); (2, "A#B#z", 3) ]
      ~ann:[ (1, F.var "A#B#y"); (2, F.var "A#B#z") ]
  in
  let d = C.Determinize.determinize a in
  (* the state reached on x must carry y ∨ z *)
  let q = A.ISet.choose (A.step d (A.start d) (C.Sym.L (l "A#B#x"))) in
  check_bool "subset annotation is disjunction" true
    (C.Formula.Sat.equivalent (A.annotation d q)
       (F.or_ (F.var "A#B#y") (F.var "A#B#z")))

(* ----------------------------- complete --------------------------- *)

let test_complete () =
  let a = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  check_bool "incomplete" false (C.Complete.is_complete a);
  let c = C.Complete.complete ~over:[ l "B#A#y" ] a in
  check_bool "complete" true (C.Complete.is_complete c);
  check_bool "language preserved +" true (C.Trace.accepts c (word [ "A#B#x" ]));
  check_bool "language preserved -" false (C.Trace.accepts c (word [ "B#A#y" ]));
  (* completing twice is stable *)
  check_int "idempotent size" (A.num_states c)
    (A.num_states (C.Complete.complete c))

(* ----------------------------- minimize --------------------------- *)

let test_minimize_merges () =
  (* two equivalent final states *)
  let a =
    afsa ~start:0 ~finals:[ 1; 2 ]
      [ (0, "A#B#x", 1); (0, "B#A#y", 2) ]
  in
  let m = C.Minimize.minimize a in
  check_int "merged finals" 2 (A.num_states m);
  check_bool "lang x" true (C.Trace.accepts m (word [ "A#B#x" ]));
  check_bool "lang y" true (C.Trace.accepts m (word [ "B#A#y" ]))

let test_minimize_respects_annotations () =
  (* same structure but different annotations must NOT merge *)
  let a =
    afsa ~start:0 ~finals:[ 1; 2 ]
      [ (0, "A#B#x", 1); (0, "B#A#y", 2) ]
      ~ann:[ (1, F.var "A#B#x") ]
  in
  let m = C.Minimize.minimize a in
  check_int "not merged" 3 (A.num_states m)

let test_minimize_idempotent () =
  let a =
    afsa ~start:0 ~finals:[ 3 ]
      [
        (0, "A#B#x", 1);
        (1, "B#A#y", 2);
        (2, "A#B#x", 3);
        (0, "A#B#z", 3);
        (3, "A#B#z", 3);
      ]
  in
  let m1 = C.Minimize.minimize a in
  let m2 = C.Minimize.minimize m1 in
  check_bool "idempotent (canonical)" true (A.structurally_equal m1 m2)

let test_minimize_loop () =
  (* unrolled loop minimizes to a single loop state *)
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "A#B#x", 1); (1, "A#B#x", 0); (0, "B#A#e", 2); (1, "B#A#e", 2) ]
  in
  let m = C.Minimize.minimize a in
  check_int "folded" 2 (A.num_states m);
  check_bool "xxe" true (C.Trace.accepts m (word [ "A#B#x"; "A#B#x"; "B#A#e" ]))

(* ------------------------------ traces ---------------------------- *)

let test_traces () =
  let a =
    afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1); (1, "A#B#x", 1) ]
  in
  check_bool "accepts" true (C.Trace.accepts a (word [ "A#B#x"; "A#B#x" ]));
  check_bool "rejects empty" false (C.Trace.accepts a []);
  (match C.Trace.shortest a with
  | Some w -> check_int "shortest length" 1 (List.length w)
  | None -> Alcotest.fail "expected a word");
  let ws = C.Trace.enumerate ~max_len:3 a in
  check_int "enumerated" 3 (List.length ws)

let test_dot () =
  let a =
    afsa ~start:0 ~finals:[ 1 ]
      [ (0, "A#B#x", 1) ]
      ~ann:[ (0, F.var "A#B#x") ]
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let dot = C.Dot.to_dot a in
  check_bool "contains digraph" true (String.sub dot 0 7 = "digraph");
  check_bool "mentions label" true (contains dot "label=\"x\"");
  check_bool "final double circle" true (contains dot "doublecircle");
  check_bool "annotation box" true (contains dot "shape=box")

let () =
  Alcotest.run "afsa"
    [
      ( "core",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "annotations" `Quick test_annotations;
          Alcotest.test_case "step/out" `Quick test_step_out;
          Alcotest.test_case "reachability/trim" `Quick test_reachability_trim;
          Alcotest.test_case "renumber" `Quick test_renumber;
          Alcotest.test_case "structural equality" `Quick test_structural_equal;
        ] );
      ( "labels",
        [
          Alcotest.test_case "parse" `Quick test_label_parse;
          Alcotest.test_case "sym" `Quick test_sym;
          Alcotest.test_case "modification" `Quick test_modification;
          Alcotest.test_case "coreachable" `Quick test_coreachable;
        ] );
      ( "epsilon",
        [
          Alcotest.test_case "closure" `Quick test_eps_closure;
          Alcotest.test_case "eliminate" `Quick test_eps_eliminate;
          Alcotest.test_case "final via closure" `Quick
            test_eps_final_through_closure;
        ] );
      ( "determinize",
        [
          Alcotest.test_case "subset construction" `Quick test_determinize;
          Alcotest.test_case "annotation disjunction" `Quick
            test_determinize_ann_disjunction;
        ] );
      ("complete", [ Alcotest.test_case "completion" `Quick test_complete ]);
      ( "minimize",
        [
          Alcotest.test_case "merges equivalent states" `Quick
            test_minimize_merges;
          Alcotest.test_case "respects annotations" `Quick
            test_minimize_respects_annotations;
          Alcotest.test_case "idempotent" `Quick test_minimize_idempotent;
          Alcotest.test_case "folds loops" `Quick test_minimize_loop;
        ] );
      ( "traces",
        [
          Alcotest.test_case "accept/enumerate/shortest" `Quick test_traces;
          Alcotest.test_case "dot export" `Quick test_dot;
        ] );
    ]
