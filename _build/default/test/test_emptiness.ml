(* The annotated emptiness test (Sec. 3.2) — the heart of the
   consistency machinery. *)

module C = Chorev
module A = C.Afsa
module F = C.Formula

let afsa ?ann ?alphabet ~start ~finals edges =
  A.of_strings ?alphabet ~start ~finals ~edges ?ann ()

let check_bool = Alcotest.(check bool)

(* -------------------------- plain emptiness ----------------------- *)

let test_plain () =
  let a = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  check_bool "nonempty" false (C.Emptiness.is_empty_plain a);
  let b = afsa ~start:0 ~finals:[ 2 ] [ (0, "A#B#x", 1) ] in
  check_bool "final unreachable" true (C.Emptiness.is_empty_plain b);
  let c = afsa ~start:0 ~finals:[] [ (0, "A#B#x", 1) ] in
  check_bool "no finals" true (C.Emptiness.is_empty_plain c)

(* ------------------------ annotated emptiness --------------------- *)

let test_no_annotations_like_plain () =
  let a = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  check_bool "nonempty" true (C.Emptiness.is_nonempty a);
  let b = afsa ~start:0 ~finals:[] [ (0, "A#B#x", 1) ] in
  check_bool "empty" true (C.Emptiness.is_empty b)

let test_mandatory_missing () =
  (* Fig. 5's pattern: annotation requires a transition that is absent *)
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "B#A#msg0", 1); (1, "B#A#msg2", 2) ]
      ~ann:[ (1, F.and_ (F.var "B#A#msg1") (F.var "B#A#msg2")) ]
  in
  check_bool "empty" true (C.Emptiness.is_empty a)

let test_mandatory_present () =
  let a =
    afsa ~start:0 ~finals:[ 2; 3 ]
      [ (0, "B#A#msg0", 1); (1, "B#A#msg1", 2); (1, "B#A#msg2", 3) ]
      ~ann:[ (1, F.and_ (F.var "B#A#msg1") (F.var "B#A#msg2")) ]
  in
  check_bool "nonempty" true (C.Emptiness.is_nonempty a)

let test_mandatory_to_dead_state () =
  (* the mandatory transition exists but leads nowhere final *)
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "B#A#msg0", 1); (1, "B#A#msg2", 2); (1, "B#A#msg1", 3) ]
      ~ann:[ (1, F.and_ (F.var "B#A#msg1") (F.var "B#A#msg2")) ]
  in
  check_bool "empty: msg1 leads to a dead state" true (C.Emptiness.is_empty a)

let test_cyclic_support () =
  (* a loop supports its own annotation (the buyer tracking pattern):
     greatest fixpoint must accept this *)
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "B#A#gs", 1); (1, "A#B#st", 0); (0, "B#A#tm", 2) ]
      ~ann:[ (0, F.and_ (F.var "B#A#gs") (F.var "B#A#tm")) ]
  in
  check_bool "loop is fine" true (C.Emptiness.is_nonempty a)

let test_vacuous_cycle_rejected () =
  (* a cycle that never reaches a final state must not count as
     support *)
  let a =
    afsa ~start:0 ~finals:[]
      [ (0, "A#B#x", 1); (1, "A#B#x", 0) ]
  in
  check_bool "no accept state" true (C.Emptiness.is_empty a);
  let b =
    afsa ~start:0 ~finals:[ 3 ]
      [ (0, "A#B#x", 1); (1, "A#B#x", 0); (0, "A#B#y", 2) ]
      (* final 3 is unreachable; y leads to dead 2 *)
  in
  check_bool "cycle plus dead branch" true (C.Emptiness.is_empty b)

let test_disjunctive_annotation () =
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "B#A#m1", 2) ]
      ~ann:[ (0, F.or_ (F.var "B#A#m1") (F.var "B#A#m2")) ]
  in
  check_bool "one disjunct suffices" true (C.Emptiness.is_nonempty a)

let test_annotation_on_final () =
  (* annotation on a final state with no outgoing transitions: variables
     are all false *)
  let a =
    afsa ~start:0 ~finals:[ 1 ]
      [ (0, "A#B#x", 1) ]
      ~ann:[ (1, F.var "A#B#x") ]
  in
  check_bool "unsatisfied final annotation" true (C.Emptiness.is_empty a);
  let b =
    afsa ~start:0 ~finals:[ 1 ]
      [ (0, "A#B#x", 1) ]
      ~ann:[ (1, F.not_ (F.var "A#B#x")) ]
  in
  (* negated var on final with no out-edges is true *)
  check_bool "negation on final ok" true (C.Emptiness.is_nonempty b)

let test_warning_on_negation () =
  let a =
    afsa ~start:0 ~finals:[ 1 ]
      [ (0, "A#B#x", 1) ]
      ~ann:[ (0, F.not_ (F.var "A#B#y")) ]
  in
  let r = C.Emptiness.analyze a in
  check_bool "warning present" true (r.C.Emptiness.warning <> None);
  let b = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  check_bool "no warning" true ((C.Emptiness.analyze b).C.Emptiness.warning = None)

let test_start_annotation () =
  (* "the automaton is non-empty if the annotation of the start state is
     true" *)
  let a =
    afsa ~start:0 ~finals:[ 1 ]
      [ (0, "A#B#x", 1) ]
      ~ann:[ (0, F.var "A#B#missing") ]
  in
  check_bool "start annotation fails" true (C.Emptiness.is_empty a)

let test_emptiness_with_eps () =
  (* ε contributes to reachability but never satisfies a variable *)
  let a =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "", 1); (1, "B#A#m", 2) ]
      ~ann:[ (0, F.var "B#A#m") ]
  in
  (* at state 0 there is no direct B#A#m edge (only via ε) *)
  check_bool "eps does not bind the variable" true (C.Emptiness.is_empty a);
  let b =
    afsa ~start:0 ~finals:[ 2 ] [ (0, "", 1); (1, "B#A#m", 2) ]
  in
  check_bool "eps still reaches the final state" true
    (C.Emptiness.is_nonempty b)

let test_large_conjunction () =
  (* a wide mandatory conjunction, all supported *)
  let n = 12 in
  let edges =
    List.init n (fun i -> (0, Printf.sprintf "B#A#m%d" i, i + 1))
  in
  let ann =
    [ (0, F.conj (List.init n (fun i -> F.var (Printf.sprintf "B#A#m%d" i)))) ]
  in
  let a = afsa ~start:0 ~finals:(List.init n (fun i -> i + 1)) edges ~ann in
  check_bool "wide conjunction ok" true (C.Emptiness.is_nonempty a);
  (* remove one alternative: empty *)
  let edges' = List.filter (fun (_, lbl, _) -> lbl <> "B#A#m5") edges in
  let b = afsa ~start:0 ~finals:(List.init n (fun i -> i + 1)) edges' ~ann in
  check_bool "one missing breaks it" true (C.Emptiness.is_empty b)

(* ------------------------------ witness --------------------------- *)

let test_witness () =
  let a =
    afsa ~start:0 ~finals:[ 2; 3 ]
      [ (0, "B#A#msg0", 1); (1, "B#A#msg1", 2); (1, "B#A#msg2", 3) ]
      ~ann:[ (1, F.and_ (F.var "B#A#msg1") (F.var "B#A#msg2")) ]
  in
  (match C.Emptiness.witness a with
  | Some w ->
      check_bool "witness accepted" true (C.Trace.accepts a w);
      check_bool "witness annotated-accepted" true
        (C.Trace.accepts_annotated a w)
  | None -> Alcotest.fail "expected witness");
  let b =
    afsa ~start:0 ~finals:[ 2 ]
      [ (0, "B#A#msg0", 1); (1, "B#A#msg2", 2) ]
      ~ann:[ (1, F.and_ (F.var "B#A#msg1") (F.var "B#A#msg2")) ]
  in
  check_bool "no witness when empty" true (C.Emptiness.witness b = None)

let test_accepts_annotated () =
  let a =
    afsa ~start:0 ~finals:[ 2; 3 ]
      [ (0, "B#A#msg0", 1); (1, "B#A#msg1", 2); (1, "B#A#msg2", 3) ]
      ~ann:[ (1, F.and_ (F.var "B#A#msg1") (F.var "B#A#msg2")) ]
  in
  let w = List.map C.Label.of_string_exn in
  check_bool "plain accept" true (C.Trace.accepts a (w [ "B#A#msg0"; "B#A#msg1" ]));
  check_bool "annotated accept" true
    (C.Trace.accepts_annotated a (w [ "B#A#msg0"; "B#A#msg1" ]));
  (* make msg1 dead: annotated acceptance of the msg2 path must fail *)
  let b =
    afsa ~start:0 ~finals:[ 3 ]
      [ (0, "B#A#msg0", 1); (1, "B#A#msg1", 2); (1, "B#A#msg2", 3) ]
      ~ann:[ (1, F.and_ (F.var "B#A#msg1") (F.var "B#A#msg2")) ]
  in
  check_bool "plain accepts msg2 path" true
    (C.Trace.accepts b (w [ "B#A#msg0"; "B#A#msg2" ]));
  check_bool "annotated rejects (msg1 dead)" false
    (C.Trace.accepts_annotated b (w [ "B#A#msg0"; "B#A#msg2" ]))

(* ---------------------------- consistency ------------------------- *)

let test_consistency_api () =
  let r = C.Consistency.check C.Scenario.Fig5.party_a C.Scenario.Fig5.party_b in
  check_bool "fig5 inconsistent" false r.C.Consistency.consistent;
  check_bool "no witness" true (r.C.Consistency.witness = None);
  let a = afsa ~start:0 ~finals:[ 1 ] [ (0, "A#B#x", 1) ] in
  let r2 = C.Consistency.check a a in
  check_bool "self-consistent" true r2.C.Consistency.consistent;
  (match r2.C.Consistency.witness with
  | Some [ lx ] ->
      Alcotest.(check string) "witness label" "A#B#x" (C.Label.to_string lx)
  | _ -> Alcotest.fail "expected single-step witness")

let () =
  Alcotest.run "emptiness"
    [
      ("plain", [ Alcotest.test_case "plain" `Quick test_plain ]);
      ( "annotated",
        [
          Alcotest.test_case "no annotations" `Quick test_no_annotations_like_plain;
          Alcotest.test_case "mandatory missing (Fig 5)" `Quick
            test_mandatory_missing;
          Alcotest.test_case "mandatory present" `Quick test_mandatory_present;
          Alcotest.test_case "mandatory to dead state" `Quick
            test_mandatory_to_dead_state;
          Alcotest.test_case "cyclic support (gfp)" `Quick test_cyclic_support;
          Alcotest.test_case "vacuous cycle rejected" `Quick
            test_vacuous_cycle_rejected;
          Alcotest.test_case "disjunctive annotation" `Quick
            test_disjunctive_annotation;
          Alcotest.test_case "annotation on final" `Quick
            test_annotation_on_final;
          Alcotest.test_case "warning on negation" `Quick
            test_warning_on_negation;
          Alcotest.test_case "start annotation" `Quick test_start_annotation;
          Alcotest.test_case "with eps" `Quick test_emptiness_with_eps;
          Alcotest.test_case "wide conjunction" `Quick test_large_conjunction;
        ] );
      ( "witness",
        [
          Alcotest.test_case "witness valid" `Quick test_witness;
          Alcotest.test_case "annotated acceptance" `Quick
            test_accepts_annotated;
        ] );
      ( "consistency",
        [ Alcotest.test_case "check api" `Quick test_consistency_api ] );
    ]
