(* Unit and property tests for the annotation logic (Def. 1). *)

module F = Chorev.Formula
open F

let check_bool msg expected actual = Alcotest.(check bool) msg expected actual
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let formula_t = Alcotest.testable (fun ppf f -> F.Pp.pp ppf f) F.equal

(* ------------------------- smart constructors --------------------- *)

let test_smart_constructors () =
  Alcotest.check formula_t "and true" (var "x") (and_ True (var "x"));
  Alcotest.check formula_t "and false" False (and_ (var "x") False);
  Alcotest.check formula_t "or false" (var "x") (or_ False (var "x"));
  Alcotest.check formula_t "or true" True (or_ (var "x") True);
  Alcotest.check formula_t "not not" (var "x") (not_ (not_ (var "x")));
  Alcotest.check formula_t "not true" False (not_ True);
  Alcotest.check formula_t "conj empty" True (conj []);
  Alcotest.check formula_t "disj empty" False (disj [])

let test_vars () =
  let f = and_ (var "a") (or_ (var "b") (not_ (var "a"))) in
  Alcotest.(check (list string)) "vars" [ "a"; "b" ] (vars_list f);
  check_int "size" 6 (size f);
  check_bool "not positive" false (is_positive f);
  check_bool "positive" true (is_positive (and_ (var "a") (var "b")))

let test_map_vars () =
  let f = and_ (var "a") (var "b") in
  let g = map_vars (fun v -> if v = "a" then True else Var v) f in
  Alcotest.check formula_t "subst a=true" (var "b") g;
  let h = rename (fun v -> v ^ "!") f in
  Alcotest.(check (list string)) "renamed" [ "a!"; "b!" ] (vars_list h)

(* ------------------------------ eval ------------------------------ *)

let test_eval () =
  let f = or_ (and_ (var "a") (var "b")) (not_ (var "c")) in
  let assign = function "a" -> true | "b" -> false | _ -> true in
  check_bool "eval" false (F.Eval.eval ~assign f);
  let assign2 = function "c" -> false | _ -> false in
  check_bool "eval2" true (F.Eval.eval ~assign:assign2 f)

let test_subst () =
  let f = and_ (var "a") (var "b") in
  let g = F.Eval.subst ~bind:(function "a" -> Some true | _ -> None) f in
  Alcotest.check formula_t "partial subst" (var "b") g;
  let h =
    F.Eval.restrict_to ~keep:(fun v -> v = "b") ~default:true f
  in
  Alcotest.check formula_t "restrict" (var "b") h;
  check_bool "eval_partial determined"
    true
    (F.Eval.eval_partial ~bind:(fun _ -> Some false) (or_ (var "x") (var "y"))
    = Some false);
  check_bool "eval_partial undetermined"
    true
    (F.Eval.eval_partial ~bind:(fun _ -> None) (var "x") = None)

(* ---------------------------- simplify ---------------------------- *)

let simplify = F.Simplify.simplify

let test_simplify_constants () =
  Alcotest.check formula_t "x and not x" False
    (simplify (and_ (var "x") (not_ (var "x"))));
  Alcotest.check formula_t "x or not x" True
    (simplify (or_ (var "x") (not_ (var "x"))));
  Alcotest.check formula_t "dedup and" (var "x")
    (simplify (And (Var "x", Var "x")));
  Alcotest.check formula_t "absorption" (var "x")
    (simplify (And (Var "x", Or (Var "x", Var "y"))))

let test_simplify_idempotent () =
  let f =
    or_
      (and_ (var "a") (or_ (var "b") (var "c")))
      (not_ (and_ (var "a") (var "b")))
  in
  let s = simplify f in
  Alcotest.check formula_t "idempotent" s (simplify s)

let test_nnf () =
  let f = not_ (and_ (var "a") (or_ (var "b") (not_ (var "c")))) in
  let n = F.Simplify.nnf f in
  let rec no_neg_above = function
    | True | False | Var _ -> true
    | Not (Var _) -> true
    | Not _ -> false
    | And (a, b) | Or (a, b) -> no_neg_above a && no_neg_above b
  in
  check_bool "nnf literal-only negation" true (no_neg_above n);
  check_bool "nnf equivalent" true (F.Sat.equivalent f n)

let test_dnf () =
  let f = and_ (or_ (var "a") (var "b")) (var "c") in
  let clauses = F.Simplify.dnf f in
  check_int "dnf clause count" 2 (List.length clauses);
  check_bool "clause consistent" true
    (F.Simplify.clause_consistent [ `Pos "a"; `Neg "b" ]);
  check_bool "clause inconsistent" false
    (F.Simplify.clause_consistent [ `Pos "a"; `Neg "a" ])

(* ------------------------------ sat ------------------------------- *)

let test_sat () =
  check_bool "sat var" true (F.Sat.satisfiable (var "x"));
  check_bool "unsat" true (F.Sat.unsat (and_ (var "x") (not_ (var "x"))));
  check_bool "tautology" true (F.Sat.tautology (or_ (var "x") (not_ (var "x"))));
  check_bool "not tautology" false (F.Sat.tautology (var "x"));
  check_bool "implies" true (F.Sat.implies (and_ (var "a") (var "b")) (var "a"));
  check_bool "not implies" false (F.Sat.implies (var "a") (var "b"))

let test_equivalent () =
  check_bool "demorgan" true
    (F.Sat.equivalent
       (not_ (and_ (var "a") (var "b")))
       (or_ (not_ (var "a")) (not_ (var "b"))));
  check_bool "distrib" true
    (F.Sat.equivalent
       (and_ (var "a") (or_ (var "b") (var "c")))
       (or_ (and_ (var "a") (var "b")) (and_ (var "a") (var "c"))));
  check_bool "distinct" false (F.Sat.equivalent (var "a") (var "b"))

let test_model () =
  (match F.Sat.model (and_ (var "a") (not_ (var "b"))) with
  | Some m ->
      check_bool "model a" true (List.assoc "a" m);
      check_bool "model b" false (List.assoc "b" m)
  | None -> Alcotest.fail "expected a model");
  check_bool "no model" true (F.Sat.model (and_ (var "a") (not_ (var "a"))) = None)

(* --------------------------- pp ----------------------------------- *)

let test_pp () =
  Alcotest.(check string)
    "paper style" "a AND b"
    (F.Pp.to_string (and_ (var "a") (var "b")));
  Alcotest.(check string)
    "precedence" "(a OR b) AND c"
    (F.Pp.to_string (and_ (or_ (var "a") (var "b")) (var "c")));
  Alcotest.(check string)
    "negation" "NOT a"
    (F.Pp.to_string (not_ (var "a")))

(* --------------------------- properties --------------------------- *)

let gen_formula =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 1 then
             oneof
               [
                 return True;
                 return False;
                 map (fun i -> Var (Printf.sprintf "v%d" i)) (int_bound 4);
               ]
           else
             frequency
               [
                 (1, map (fun f -> not_ f) (self (n / 2)));
                 (2, map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2)));
               ]))

let arb_formula = QCheck.make ~print:F.Pp.to_string gen_formula

let assignments f =
  let vs = vars_list f in
  let n = List.length vs in
  List.init (1 lsl n) (fun mask v ->
      let rec idx i = function
        | [] -> 0
        | w :: tl -> if String.equal v w then i else idx (i + 1) tl
      in
      mask land (1 lsl idx 0 vs) <> 0)

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify preserves semantics" ~count:300 arb_formula
    (fun f ->
      let s = simplify f in
      List.for_all
        (fun assign -> F.Eval.eval ~assign f = F.Eval.eval ~assign s)
        (assignments f))

let prop_simplify_shrinks =
  QCheck.Test.make ~name:"simplify never grows unboundedly" ~count:300
    arb_formula (fun f -> size (simplify f) <= Stdlib.max 1 (4 * size f))

let prop_nnf_equiv =
  QCheck.Test.make ~name:"nnf equivalent" ~count:300 arb_formula (fun f ->
      F.Sat.equivalent f (F.Simplify.nnf f))

let prop_sat_vs_truthtable =
  QCheck.Test.make ~name:"satisfiable agrees with truth table" ~count:300
    arb_formula (fun f ->
      F.Sat.satisfiable f
      = List.exists (fun assign -> F.Eval.eval ~assign f) (assignments f))

let () =
  Alcotest.run "formula"
    [
      ( "syntax",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "vars/size/positive" `Quick test_vars;
          Alcotest.test_case "map_vars/rename" `Quick test_map_vars;
        ] );
      ( "eval",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "subst/restrict" `Quick test_subst;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "constants" `Quick test_simplify_constants;
          Alcotest.test_case "idempotent" `Quick test_simplify_idempotent;
          Alcotest.test_case "nnf" `Quick test_nnf;
          Alcotest.test_case "dnf" `Quick test_dnf;
        ] );
      ( "sat",
        [
          Alcotest.test_case "sat/unsat/tautology" `Quick test_sat;
          Alcotest.test_case "equivalent" `Quick test_equivalent;
          Alcotest.test_case "model" `Quick test_model;
        ] );
      ("pp", [ Alcotest.test_case "printing" `Quick test_pp ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplify_preserves;
            prop_simplify_shrinks;
            prop_nnf_equiv;
            prop_sat_vs_truthtable;
          ] );
    ]
