(* Persistence round-trips: formula text, aFSA text format, process
   s-expressions. *)

module C = Chorev
module F = C.Formula
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ----------------------------- formulas ---------------------------- *)

let fparse = Chorev_formula.Parse.of_string_exn

let test_formula_parse_basics () =
  check_bool "var" true (F.equal (fparse "B#A#orderOp") (F.var "B#A#orderOp"));
  check_bool "and" true
    (F.equal (fparse "a AND b") (F.And (F.Var "a", F.Var "b")));
  check_bool "precedence" true
    (F.Sat.equivalent (fparse "a OR b AND c")
       (F.or_ (F.var "a") (F.and_ (F.var "b") (F.var "c"))));
  check_bool "parens" true
    (F.Sat.equivalent (fparse "(a OR b) AND c")
       (F.and_ (F.or_ (F.var "a") (F.var "b")) (F.var "c")));
  check_bool "not" true (F.equal (fparse "NOT a") (F.Not (F.Var "a")));
  check_bool "constants" true
    (F.equal (fparse "true") F.True && F.equal (fparse "false") F.False)

let test_formula_parse_errors () =
  let bad s = Result.is_error (Chorev_formula.Parse.of_string s) in
  check_bool "unbalanced" true (bad "(a AND b");
  check_bool "dangling op" true (bad "a AND");
  check_bool "leading op" true (bad "AND a");
  check_bool "trailing" true (bad "a b");
  check_bool "empty" true (bad "")

let gen_formula =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 1 then
             oneof
               [
                 return F.True;
                 return F.False;
                 map (fun i -> F.Var (Printf.sprintf "A#B#v%dOp" i)) (int_bound 4);
               ]
           else
             frequency
               [
                 (1, map (fun f -> F.Not f) (self (n / 2)));
                 (2, map2 (fun a b -> F.And (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> F.Or (a, b)) (self (n / 2)) (self (n / 2)));
               ]))

let prop_formula_roundtrip =
  QCheck.Test.make ~name:"pp → parse round-trips (semantically)" ~count:300
    (QCheck.make ~print:F.Pp.to_string gen_formula) (fun f ->
      F.Sat.equivalent f (fparse (F.Pp.to_string f)))

(* ------------------------------ aFSAs ------------------------------ *)

module S = Chorev_afsa.Serialize

let test_afsa_roundtrip_scenario () =
  List.iter
    (fun (name, a) ->
      let b = S.of_string_exn (S.to_string a) in
      check_bool (name ^ " round-trips") true (C.Afsa.structurally_equal a b))
    [
      ("buyer", C.Public_gen.public P.buyer_process);
      ("accounting", C.Public_gen.public P.accounting_process);
      ("fig5a", C.Scenario.Fig5.party_a);
      ("fig5b", C.Scenario.Fig5.party_b);
      ("intersection", C.Scenario.Fig5.intersection ());
    ]

let test_afsa_eps_roundtrip () =
  let a =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ]
      ~edges:[ (0, "", 1); (1, "A#B#x", 0) ]
      ()
  in
  check_bool "eps round-trips" true
    (C.Afsa.structurally_equal a (S.of_string_exn (S.to_string a)))

let test_afsa_parse_errors () =
  let bad s = Result.is_error (S.of_string s) in
  check_bool "empty" true (bad "");
  check_bool "bad header" true (bad "nope v1\nstart 0");
  check_bool "missing start" true (bad "afsa v1\nfinals 0");
  check_bool "garbage line" true (bad "afsa v1\nstart 0\nwhatever");
  check_bool "bad edge" true (bad "afsa v1\nstart 0\nedge x y z")

let prop_afsa_roundtrip =
  QCheck.Test.make ~name:"random aFSA serialize round-trips" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let a = C.Workload.Gen_afsa.random ~seed ~states:7 () in
      C.Afsa.structurally_equal a (S.of_string_exn (S.to_string a)))

let test_afsa_file () =
  let a = C.Public_gen.public P.buyer_process in
  let path = Filename.temp_file "chorev" ".afsa" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.to_file ~path a;
      match S.of_file path with
      | Ok b -> check_bool "file round-trip" true (C.Afsa.structurally_equal a b)
      | Error e -> Alcotest.fail e)

(* ---------------------------- processes ---------------------------- *)

module X = Chorev_bpel.Sexp

let test_process_roundtrip_scenario () =
  List.iter
    (fun p ->
      match X.process_of_string (X.process_to_string p) with
      | Ok p' ->
          check_bool
            (C.Bpel.Process.name p ^ " round-trips")
            true
            (C.Bpel.Activity.equal (C.Bpel.Process.body p)
               (C.Bpel.Process.body p')
            && String.equal (C.Bpel.Process.party p) (C.Bpel.Process.party p')
            && C.Bpel.Process.links p = C.Bpel.Process.links p')
      | Error e -> Alcotest.fail e)
    [
      P.buyer_process; P.accounting_process; P.logistics_process;
      P.accounting_cancel; P.accounting_once; P.buyer_with_cancel;
      P.buyer_once;
    ]

let test_process_quoting () =
  (* block names with spaces and quotes survive *)
  let p =
    C.Bpel.Process.with_body P.buyer_process
      (C.Bpel.Activity.seq {|we "quote" things|}
         [ C.Bpel.Activity.Assign "x y z" ])
  in
  match X.process_of_string (X.process_to_string p) with
  | Ok p' ->
      check_bool "quoted round-trip" true
        (C.Bpel.Activity.equal (C.Bpel.Process.body p) (C.Bpel.Process.body p'))
  | Error e -> Alcotest.fail e

let test_process_parse_errors () =
  check_bool "garbage" true (Result.is_error (X.process_of_string "(nope)"));
  check_bool "truncated" true
    (Result.is_error (X.process_of_string "(process a b"));
  check_bool "activity garbage" true
    (Result.is_error (X.activity_of_string "(frobnicate x)"))

let prop_process_roundtrip =
  QCheck.Test.make ~name:"random process sexp round-trips" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let pa, _ = C.Workload.Gen_process.pair ~seed () in
      match X.process_of_string (X.process_to_string pa) with
      | Ok p' ->
          C.Bpel.Activity.equal (C.Bpel.Process.body pa)
            (C.Bpel.Process.body p')
      | Error _ -> false)

(* A serialized process regenerates the identical public process. *)
let test_roundtrip_preserves_public () =
  let p = P.accounting_process in
  let p' = Result.get_ok (X.process_of_string (X.process_to_string p)) in
  check_bool "same public" true
    (C.Equiv.equal_annotated (C.Public_gen.public p) (C.Public_gen.public p'))

let test_pp_stability () =
  (* serialization is deterministic *)
  check_str "stable output"
    (X.process_to_string P.buyer_process)
    (X.process_to_string P.buyer_process)

let () =
  Alcotest.run "serialize"
    [
      ( "formula",
        [
          Alcotest.test_case "parse basics" `Quick test_formula_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_formula_parse_errors;
          QCheck_alcotest.to_alcotest prop_formula_roundtrip;
        ] );
      ( "afsa",
        [
          Alcotest.test_case "scenario round-trips" `Quick
            test_afsa_roundtrip_scenario;
          Alcotest.test_case "eps" `Quick test_afsa_eps_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_afsa_parse_errors;
          Alcotest.test_case "file io" `Quick test_afsa_file;
          QCheck_alcotest.to_alcotest prop_afsa_roundtrip;
        ] );
      ( "process",
        [
          Alcotest.test_case "scenario round-trips" `Quick
            test_process_roundtrip_scenario;
          Alcotest.test_case "quoting" `Quick test_process_quoting;
          Alcotest.test_case "parse errors" `Quick test_process_parse_errors;
          Alcotest.test_case "public preserved" `Quick
            test_roundtrip_preserves_public;
          Alcotest.test_case "stable" `Quick test_pp_stability;
          QCheck_alcotest.to_alcotest prop_process_roundtrip;
        ] );
    ]
