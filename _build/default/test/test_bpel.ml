(* The BPEL-lite process substrate: AST navigation, paths, validation,
   pretty/XML printing, structural edits. *)

module C = Chorev
module B = C.Bpel
module Act = B.Activity

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let sample =
  Act.seq "root"
    [
      Act.receive ~partner:"P" ~op:"inOp";
      Act.while_ "loop" ~cond:"1 = 1"
        (Act.switch "sw"
           [
             Act.branch ~cond:"a" (Act.invoke ~partner:"P" ~op:"aOp");
             Act.otherwise (Act.seq "term" [ Act.invoke ~partner:"P" ~op:"bOp"; Act.Terminate ]);
           ]);
    ]

let registry =
  B.Types.registry
    [
      ( "P",
        {
          B.Types.pt_name = "pPort";
          ops = [ B.Types.async "aOp"; B.Types.async "bOp"; B.Types.sync "sOp" ];
        } );
      ("me", { B.Types.pt_name = "mePort"; ops = [ B.Types.async "inOp" ] });
    ]

let proc = B.Process.make ~name:"p" ~party:"me" ~registry sample

(* ----------------------------- activity --------------------------- *)

let test_children () =
  check_int "root children" 2 (List.length (Act.children sample));
  let sw = Option.get (Act.find_at [ 1; 0 ] sample) in
  check_int "switch children" 2 (List.length (Act.children sw));
  check_str "block name" "Switch:sw" (Option.get (Act.block_name sw));
  check_bool "basic has no block name" true
    (Act.block_name (Act.receive ~partner:"P" ~op:"x") = None)

let test_with_children () =
  let sw = Option.get (Act.find_at [ 1; 0 ] sample) in
  let kids = Act.children sw in
  let sw' = Act.with_children sw kids in
  check_bool "rebuild identical" true (Act.equal sw sw');
  check_bool "wrong arity raises" true
    (try
       ignore (Act.with_children sw []);
       false
     with Invalid_argument _ -> true)

let test_paths () =
  check_bool "find root" true (Act.find_at [] sample <> None);
  check_bool "find deep" true (Act.find_at [ 1; 0; 1 ] sample <> None);
  check_bool "invalid path" true (Act.find_at [ 9 ] sample = None);
  let updated =
    Option.get (Act.update_at [ 0 ] (fun _ -> Act.Empty) sample)
  in
  check_bool "updated" true (Act.find_at [ 0 ] updated = Some Act.Empty);
  check_bool "update invalid path" true
    (Act.update_at [ 7; 7 ] (fun a -> a) sample = None)

let test_fold_size_nodes () =
  check_int "size" 8 (Act.size sample);
  check_int "all nodes" 8 (List.length (Act.all_nodes sample));
  let comms = Act.communications sample in
  check_int "communications" 3 (List.length comms)

let test_named_path () =
  let np = Act.named_path sample [ 1; 0; 1 ] in
  Alcotest.(check (list string))
    "named path"
    [ "Sequence:root"; "While:loop"; "Switch:sw"; "Sequence:term" ]
    np

(* ------------------------------ process ---------------------------- *)

let test_labels_of_comm () =
  let labels kind c = B.Process.labels_of_comm proc kind c in
  let c = { Act.partner = "P"; op = "aOp" } in
  Alcotest.(check (list string))
    "async invoke" [ "me#P#aOp" ]
    (List.map C.Label.to_string (labels `Invoke c));
  let s = { Act.partner = "P"; op = "sOp" } in
  Alcotest.(check (list string))
    "sync invoke" [ "me#P#sOp"; "P#me#sOp" ]
    (List.map C.Label.to_string (labels `Invoke s));
  let r = { Act.partner = "P"; op = "inOp" } in
  Alcotest.(check (list string))
    "receive" [ "P#me#inOp" ]
    (List.map C.Label.to_string (labels `Receive r))

let test_alphabet_partners () =
  check_int "alphabet" 3 (List.length (B.Process.alphabet proc));
  Alcotest.(check (list string)) "partners" [ "P" ] (B.Process.partners proc)

(* ----------------------------- validate --------------------------- *)

let test_validate_ok () =
  check_bool "valid" true (B.Validate.is_valid proc)

let test_validate_catches () =
  let bad_op =
    B.Process.with_body proc (Act.invoke ~partner:"P" ~op:"nopeOp")
  in
  check_bool "unregistered op" false (B.Validate.is_valid bad_op);
  let self_talk =
    B.Process.with_body proc (Act.invoke ~partner:"me" ~op:"aOp")
  in
  check_bool "self communication" false (B.Validate.is_valid self_talk);
  let empty_pick = B.Process.with_body proc (Act.pick "p" []) in
  check_bool "empty pick" false (B.Validate.is_valid empty_pick);
  let dup_blocks =
    B.Process.with_body proc
      (Act.seq "x" [ Act.seq "dup" [ Act.Empty ]; Act.seq "dup" [ Act.Empty ] ])
  in
  check_bool "duplicate block names" false (B.Validate.is_valid dup_blocks);
  let empty_seq = B.Process.with_body proc (Act.seq "x" []) in
  check_bool "empty sequence" false (B.Validate.is_valid empty_seq);
  let dup_arms =
    B.Process.with_body proc
      (Act.pick "p"
         [
           Act.on_message ~partner:"P" ~op:"aOp" Act.Empty;
           Act.on_message ~partner:"P" ~op:"aOp" Act.Empty;
         ])
  in
  check_bool "duplicate pick triggers" false (B.Validate.is_valid dup_arms)

(* ------------------------------- pp -------------------------------- *)

let test_pp () =
  let s = B.Pp.to_string proc in
  check_bool "mentions while" true (contains s "while loop");
  check_bool "mentions receive" true (contains s "receive P/inOp");
  check_bool "mentions case" true (contains s "case [a]")

let test_xml () =
  let x = B.Pp.to_xml proc in
  check_bool "xml process" true (contains x "<process name=\"p\"");
  check_bool "xml while" true (contains x "<while name=\"loop\"");
  check_bool "xml otherwise" true (contains x "<otherwise>");
  check_bool "xml escapes" true
    (contains
       (B.Pp.to_xml (B.Process.with_body proc (Act.seq "a<b" [ Act.Empty ])))
       "a&lt;b")

(* ------------------------------- edit ------------------------------ *)

let test_edit_insert_delete () =
  let body = B.Process.body proc in
  let inserted =
    Result.get_ok
      (B.Edit.insert_in_sequence ~path:[] ~pos:1 (Act.Assign "a") body)
  in
  (match inserted with
  | Act.Sequence (_, kids) -> check_int "inserted" 3 (List.length kids)
  | _ -> Alcotest.fail "expected sequence");
  let deleted = Result.get_ok (B.Edit.delete_child ~path:[] ~index:0 body) in
  (match deleted with
  | Act.Sequence (_, kids) -> check_int "deleted" 1 (List.length kids)
  | _ -> Alcotest.fail "expected sequence");
  check_bool "delete bad index" true
    (Result.is_error (B.Edit.delete_child ~path:[] ~index:9 body));
  check_bool "insert into non-sequence" true
    (Result.is_error
       (B.Edit.insert_in_sequence ~path:[ 0 ] ~pos:0 Act.Empty body))

let test_edit_receive_to_pick () =
  let body = B.Process.body proc in
  let picked =
    Result.get_ok
      (B.Edit.receive_to_pick ~path:[ 0 ] ~name:"alt"
         ~arms:[ Act.on_message ~partner:"P" ~op:"bOp" Act.Empty ]
         body)
  in
  (match Act.find_at [ 0 ] picked with
  | Some (Act.Pick { on_messages; _ }) ->
      check_int "two arms" 2 (List.length on_messages)
  | _ -> Alcotest.fail "expected pick");
  check_bool "non-receive rejected" true
    (Result.is_error
       (B.Edit.receive_to_pick ~path:[ 1 ] ~name:"x" ~arms:[] body))

let test_edit_loops () =
  let body = B.Process.body proc in
  let unrolled =
    Result.get_ok
      (B.Edit.unroll_while_once ~path:[ 1 ] ~switch_name:"once" body)
  in
  (match Act.find_at [ 1 ] unrolled with
  | Some (Act.Switch { branches; _ }) ->
      check_int "two branches" 2 (List.length branches)
  | _ -> Alcotest.fail "expected switch");
  let removed = Result.get_ok (B.Edit.remove_while ~path:[ 1 ] body) in
  (match Act.find_at [ 1 ] removed with
  | Some (Act.Switch _) -> ()
  | _ -> Alcotest.fail "expected spliced body");
  check_bool "unroll non-while" true
    (Result.is_error (B.Edit.unroll_while_once ~path:[ 0 ] ~switch_name:"x" body))

let test_edit_find () =
  let body = B.Process.body proc in
  check_bool "find_block" true (B.Edit.find_block ~name:"While:loop" body = Some [ 1 ]);
  check_bool "find_block missing" true (B.Edit.find_block ~name:"While:none" body = None);
  (match B.Edit.find_first ~pred:(function Act.Terminate -> true | _ -> false) body with
  | Some (p, _) -> Alcotest.(check (list int)) "terminate path" [ 1; 0; 1; 1 ] p
  | None -> Alcotest.fail "expected to find terminate")

let () =
  Alcotest.run "bpel"
    [
      ( "activity",
        [
          Alcotest.test_case "children" `Quick test_children;
          Alcotest.test_case "with_children" `Quick test_with_children;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "fold/size" `Quick test_fold_size_nodes;
          Alcotest.test_case "named path" `Quick test_named_path;
        ] );
      ( "process",
        [
          Alcotest.test_case "labels_of_comm" `Quick test_labels_of_comm;
          Alcotest.test_case "alphabet/partners" `Quick test_alphabet_partners;
        ] );
      ( "validate",
        [
          Alcotest.test_case "valid process" `Quick test_validate_ok;
          Alcotest.test_case "catches issues" `Quick test_validate_catches;
        ] );
      ( "pp",
        [
          Alcotest.test_case "pretty printer" `Quick test_pp;
          Alcotest.test_case "xml emitter" `Quick test_xml;
        ] );
      ( "edit",
        [
          Alcotest.test_case "insert/delete" `Quick test_edit_insert_delete;
          Alcotest.test_case "receive→pick" `Quick test_edit_receive_to_pick;
          Alcotest.test_case "loops" `Quick test_edit_loops;
          Alcotest.test_case "find" `Quick test_edit_find;
        ] );
    ]
