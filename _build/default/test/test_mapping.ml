(* Public-process generation (Sec. 3.3): compilation rules, annotation
   rules, and the mapping table (Table 1). *)

module C = Chorev
module A = C.Afsa
module B = C.Bpel
module Act = B.Activity
module F = C.Formula
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let l = C.Label.of_string_exn
let word = List.map l

let registry =
  B.Types.registry
    [
      ( "P",
        {
          B.Types.pt_name = "pPort";
          ops =
            [
              B.Types.async "aOp";
              B.Types.async "bOp";
              B.Types.async "cOp";
              B.Types.sync "sOp";
            ];
        } );
      ( "me",
        {
          B.Types.pt_name = "mePort";
          ops = [ B.Types.async "inOp"; B.Types.async "in2Op" ];
        } );
    ]

let proc body = B.Process.make ~name:"t" ~party:"me" ~registry body
let gen body = C.Public_gen.public (proc body)

(* --------------------------- basic blocks ------------------------- *)

let test_receive () =
  let a = gen (Act.seq "r" [ Act.receive ~partner:"P" ~op:"inOp" ]) in
  check_int "two states" 2 (A.num_states a);
  check_bool "accepts" true (C.Trace.accepts a (word [ "P#me#inOp" ]))

let test_invoke_async () =
  let a = gen (Act.seq "r" [ Act.invoke ~partner:"P" ~op:"aOp" ]) in
  check_bool "accepts" true (C.Trace.accepts a (word [ "me#P#aOp" ]))

let test_invoke_sync_two_messages () =
  let a = gen (Act.seq "r" [ Act.invoke ~partner:"P" ~op:"sOp" ]) in
  check_int "three states" 3 (A.num_states a);
  check_bool "request then response" true
    (C.Trace.accepts a (word [ "me#P#sOp"; "P#me#sOp" ]))

let test_silent_activities () =
  let a =
    gen
      (Act.seq "r"
         [ Act.Assign "x"; Act.Empty; Act.invoke ~partner:"P" ~op:"aOp" ])
  in
  check_int "silent collapse" 2 (A.num_states a);
  check_bool "accepts" true (C.Trace.accepts a (word [ "me#P#aOp" ]))

let test_terminate_is_final () =
  let a =
    gen
      (Act.seq "r"
         [ Act.invoke ~partner:"P" ~op:"aOp"; Act.Terminate;
           Act.invoke ~partner:"P" ~op:"bOp" ])
  in
  (* bOp is unreachable: terminate ends the process *)
  check_bool "a accepted" true (C.Trace.accepts a (word [ "me#P#aOp" ]));
  check_bool "ab rejected" false
    (C.Trace.accepts a (word [ "me#P#aOp"; "me#P#bOp" ]))

let test_switch_branches () =
  let a =
    gen
      (Act.seq "r"
         [
           Act.switch "sw"
             [
               Act.branch ~cond:"1" (Act.invoke ~partner:"P" ~op:"aOp");
               Act.branch ~cond:"2" (Act.invoke ~partner:"P" ~op:"bOp");
             ];
         ])
  in
  check_bool "a" true (C.Trace.accepts a (word [ "me#P#aOp" ]));
  check_bool "b" true (C.Trace.accepts a (word [ "me#P#bOp" ]));
  check_bool "ab" false (C.Trace.accepts a (word [ "me#P#aOp"; "me#P#bOp" ]))

let test_switch_annotation () =
  let a =
    gen
      (Act.seq "r"
         [
           Act.switch "sw"
             [
               Act.branch ~cond:"1" (Act.invoke ~partner:"P" ~op:"aOp");
               Act.branch ~cond:"2" (Act.invoke ~partner:"P" ~op:"bOp");
             ];
         ])
  in
  check_bool "conjunctive mandatory annotation" true
    (F.Sat.equivalent
       (A.annotation a (A.start a))
       (F.and_ (F.var "me#P#aOp") (F.var "me#P#bOp")))

let test_single_branch_no_annotation () =
  let a =
    gen
      (Act.seq "r"
         [
           Act.switch "sw"
             [ Act.branch ~cond:"1" (Act.invoke ~partner:"P" ~op:"aOp") ];
         ])
  in
  check_bool "no annotation" false (A.has_annotations a)

let test_pick_no_annotation () =
  let a =
    gen
      (Act.seq "r"
         [
           Act.pick "pk"
             [
               Act.on_message ~partner:"P" ~op:"inOp" Act.Empty;
               Act.on_message ~partner:"P" ~op:"in2Op" Act.Empty;
             ];
         ])
  in
  check_bool "external choice optional" false (A.has_annotations a);
  check_bool "in" true (C.Trace.accepts a (word [ "P#me#inOp" ]));
  check_bool "in2" true (C.Trace.accepts a (word [ "P#me#in2Op" ]))

let test_receive_first_annotation_excluded () =
  (* branches starting with receives contribute nothing mandatory *)
  let a =
    gen
      (Act.seq "r"
         [
           Act.switch "sw"
             [
               Act.branch ~cond:"1" (Act.invoke ~partner:"P" ~op:"aOp");
               Act.branch ~cond:"2" (Act.receive ~partner:"P" ~op:"inOp");
             ];
         ])
  in
  check_bool "only send is mandatory" true
    (F.Sat.equivalent (A.annotation a (A.start a)) (F.var "me#P#aOp"))

let test_while_infinite_no_exit () =
  let a =
    gen
      (Act.seq "r"
         [
           Act.while_ "loop" ~cond:"1 = 1"
             (Act.pick "pk"
                [
                  Act.on_message ~partner:"P" ~op:"inOp" Act.Empty;
                  Act.on_message ~partner:"P" ~op:"in2Op" Act.Terminate;
                ]);
         ])
  in
  check_bool "cannot exit without terminate" false
    (C.Trace.accepts a (word [ "P#me#inOp" ]));
  check_bool "terminates via in2" true (C.Trace.accepts a (word [ "P#me#in2Op" ]));
  check_bool "loops" true
    (C.Trace.accepts a (word [ "P#me#inOp"; "P#me#inOp"; "P#me#in2Op" ]))

let test_while_finite_has_exit () =
  let a =
    gen
      (Act.seq "r"
         [
           Act.while_ "loop" ~cond:"again?"
             (Act.invoke ~partner:"P" ~op:"aOp");
           Act.invoke ~partner:"P" ~op:"bOp";
         ])
  in
  check_bool "zero iterations" true (C.Trace.accepts a (word [ "me#P#bOp" ]));
  check_bool "two iterations" true
    (C.Trace.accepts a (word [ "me#P#aOp"; "me#P#aOp"; "me#P#bOp" ]))

let test_flow_interleaves () =
  let a =
    gen
      (Act.seq "r"
         [
           Act.flow "f"
             [
               Act.invoke ~partner:"P" ~op:"aOp";
               Act.invoke ~partner:"P" ~op:"bOp";
             ];
           Act.invoke ~partner:"P" ~op:"cOp";
         ])
  in
  check_bool "ab order" true
    (C.Trace.accepts a (word [ "me#P#aOp"; "me#P#bOp"; "me#P#cOp" ]));
  check_bool "ba order" true
    (C.Trace.accepts a (word [ "me#P#bOp"; "me#P#aOp"; "me#P#cOp" ]));
  check_bool "c needs both" false
    (C.Trace.accepts a (word [ "me#P#aOp"; "me#P#cOp" ]))

let test_scope_transparent () =
  let a =
    gen (Act.seq "r" [ Act.scope "s" (Act.invoke ~partner:"P" ~op:"aOp") ])
  in
  check_bool "scope body" true (C.Trace.accepts a (word [ "me#P#aOp" ]))

let test_nonterminating_cond_variants () =
  check_bool "1=1 spaced" true (C.Public_gen.nonterminating_cond "1 = 1");
  check_bool "true upper" true (C.Public_gen.nonterminating_cond "TRUE");
  check_bool "squashed" true (C.Public_gen.nonterminating_cond "1=1");
  check_bool "other" false (C.Public_gen.nonterminating_cond "x > 0")

(* ----------------------- the paper's processes --------------------- *)

let test_fig6_buyer_public () =
  let a, _ = C.Public_gen.generate P.buyer_process in
  check_int "5 states" 5 (A.num_states a);
  check_int "5 edges" 5 (A.num_edges a);
  check_int "one final" 1 (List.length (A.finals a));
  (* loop head annotation: both tracking messages mandatory *)
  check_bool "fig6 annotation" true
    (F.Sat.equivalent (A.annotation a 2)
       (F.and_ (F.var "B#A#get_statusOp") (F.var "B#A#terminateOp")))

let test_table1 () =
  let _, tbl = C.Public_gen.generate P.buyer_process in
  let blocks q =
    List.map (fun (e : C.Table.entry) -> e.block) (C.Table.entries tbl q)
  in
  Alcotest.(check (list string))
    "state 0" [ "BPELProcess"; "Sequence:buyer process" ] (blocks 0);
  Alcotest.(check (list string)) "state 1" [ "Sequence:buyer process" ] (blocks 1);
  Alcotest.(check (list string))
    "state 2"
    [
      "Sequence:buyer process";
      "While:tracking";
      "Switch:termination?";
      "Sequence:cond continue";
      "Sequence:cond terminate";
    ]
    (blocks 2);
  Alcotest.(check (list string)) "state 3" [ "Sequence:cond continue" ] (blocks 3);
  Alcotest.(check (list string)) "state 4" [ "Sequence:cond terminate" ] (blocks 4);
  (* anchor = first block *)
  match C.Table.anchor tbl 2 with
  | Some e -> Alcotest.(check string) "anchor" "Sequence:buyer process" e.block
  | None -> Alcotest.fail "anchor expected"

let test_fig7_accounting_public () =
  let a = C.Public_gen.public P.accounting_process in
  check_int "10 states" 10 (A.num_states a);
  check_bool "full happy path" true
    (C.Trace.accepts a
       (word
          [
            "B#A#orderOp";
            "A#L#deliverOp";
            "L#A#deliver_confOp";
            "A#B#deliveryOp";
            "B#A#terminateOp";
            "A#L#terminateLOp";
          ]));
  check_bool "no accounting annotations (pick is external)" false
    (A.has_annotations a)

let test_table_anchor_paths_valid () =
  let p = P.buyer_process in
  let _, tbl = C.Public_gen.generate p in
  List.iter
    (fun q ->
      List.iter
        (fun (e : C.Table.entry) ->
          check_bool
            (Printf.sprintf "path of %s resolves" e.block)
            true
            (Act.find_at e.path (B.Process.body p) <> None))
        (C.Table.entries tbl q))
    (C.Table.states tbl)

let test_generation_is_deterministic_automaton () =
  List.iter
    (fun (_, p) ->
      check_bool
        (B.Process.name p ^ " deterministic")
        true
        (A.is_deterministic (C.Public_gen.public p)))
    P.parties

let test_reply () =
  let a =
    gen
      (Act.seq "r"
         [ Act.receive ~partner:"P" ~op:"inOp"; Act.reply ~partner:"P" ~op:"in2Op" ])
  in
  check_bool "receive then reply" true
    (C.Trace.accepts a (word [ "P#me#inOp"; "me#P#in2Op" ]))

let test_sync_receive () =
  (* a receive of a synchronous operation of MY port produces request
     then response *)
  let reg =
    B.Types.registry
      [
        ("me", { B.Types.pt_name = "p"; ops = [ B.Types.sync "rpcOp" ] });
        ("P", { B.Types.pt_name = "q"; ops = [] });
      ]
  in
  let p =
    B.Process.make ~name:"t" ~party:"me" ~registry:reg
      (Act.seq "r" [ Act.receive ~partner:"P" ~op:"rpcOp" ])
  in
  let a = C.Public_gen.public p in
  check_bool "request then response" true
    (C.Trace.accepts a (word [ "P#me#rpcOp"; "me#P#rpcOp" ]))

let test_pick_sync_trigger () =
  let reg =
    B.Types.registry
      [
        ("me", { B.Types.pt_name = "p"; ops = [ B.Types.sync "rpcOp" ] });
        ("P", { B.Types.pt_name = "q"; ops = [ B.Types.async "aOp" ] });
      ]
  in
  let p =
    B.Process.make ~name:"t" ~party:"me" ~registry:reg
      (Act.seq "r"
         [
           Act.pick "pk"
             [
               Act.on_message ~partner:"P" ~op:"rpcOp"
                 (Act.invoke ~partner:"P" ~op:"aOp");
             ];
         ])
  in
  let a = C.Public_gen.public p in
  check_bool "sync trigger then body" true
    (C.Trace.accepts a (word [ "P#me#rpcOp"; "me#P#rpcOp"; "me#P#aOp" ]))

let test_nested_scopes_and_empty_branches () =
  let a =
    gen
      (Act.seq "r"
         [
           Act.scope "outer"
             (Act.scope "inner"
                (Act.switch "sw"
                   [
                     Act.branch ~cond:"go" (Act.invoke ~partner:"P" ~op:"aOp");
                     Act.otherwise Act.Empty;
                   ]));
           Act.invoke ~partner:"P" ~op:"bOp";
         ])
  in
  check_bool "taken branch" true
    (C.Trace.accepts a (word [ "me#P#aOp"; "me#P#bOp" ]));
  check_bool "empty branch skips" true (C.Trace.accepts a (word [ "me#P#bOp" ]))

let test_table_merges_on_silent () =
  (* a while whose body starts with an assign: the assign's ε collapses
     and the block entries merge onto one state *)
  let p =
    proc
      (Act.seq "r"
         [
           Act.receive ~partner:"P" ~op:"inOp";
           Act.while_ "w" ~cond:"1 = 1"
             (Act.seq "body"
                [ Act.Assign "log"; Act.receive ~partner:"P" ~op:"in2Op" ]);
         ])
  in
  let _, tbl = C.Public_gen.generate p in
  let blocks q =
    List.map (fun (e : C.Table.entry) -> e.block) (C.Table.entries tbl q)
  in
  check_bool "loop head carries while and body blocks" true
    (List.mem "While:w" (blocks 1) && List.mem "Sequence:body" (blocks 1))

(* --------------------------- firsts analysis ----------------------- *)

let test_firsts () =
  let p = proc (Act.seq "x" [ Act.Empty ]) in
  let firsts act = List.map C.Label.to_string (C.Firsts.first_sends p act) in
  Alcotest.(check (list string))
    "invoke" [ "me#P#aOp" ]
    (firsts (Act.invoke ~partner:"P" ~op:"aOp"));
  Alcotest.(check (list string))
    "receive contributes nothing" []
    (firsts (Act.receive ~partner:"P" ~op:"inOp"));
  Alcotest.(check (list string))
    "walk through receives" [ "me#P#aOp" ]
    (firsts
       (Act.seq "s"
          [
            Act.receive ~partner:"P" ~op:"inOp";
            Act.invoke ~partner:"P" ~op:"aOp";
          ]));
  Alcotest.(check (list string))
    "first per partner only" [ "me#P#aOp" ]
    (firsts
       (Act.seq "s"
          [ Act.invoke ~partner:"P" ~op:"aOp"; Act.invoke ~partner:"P" ~op:"bOp" ]));
  Alcotest.(check (list string))
    "stops at choice" []
    (firsts
       (Act.seq "s"
          [
            Act.switch "sw" [ Act.branch ~cond:"c" (Act.invoke ~partner:"P" ~op:"aOp") ];
            Act.invoke ~partner:"P" ~op:"bOp";
          ]));
  Alcotest.(check (list string))
    "stops at terminate" []
    (firsts (Act.seq "s" [ Act.Terminate; Act.invoke ~partner:"P" ~op:"aOp" ]))

let () =
  Alcotest.run "mapping"
    [
      ( "blocks",
        [
          Alcotest.test_case "receive" `Quick test_receive;
          Alcotest.test_case "invoke async" `Quick test_invoke_async;
          Alcotest.test_case "invoke sync" `Quick test_invoke_sync_two_messages;
          Alcotest.test_case "silent activities" `Quick test_silent_activities;
          Alcotest.test_case "terminate" `Quick test_terminate_is_final;
          Alcotest.test_case "switch" `Quick test_switch_branches;
          Alcotest.test_case "scope" `Quick test_scope_transparent;
          Alcotest.test_case "flow interleaving" `Quick test_flow_interleaves;
          Alcotest.test_case "while infinite" `Quick test_while_infinite_no_exit;
          Alcotest.test_case "while finite" `Quick test_while_finite_has_exit;
          Alcotest.test_case "nonterminating conds" `Quick
            test_nonterminating_cond_variants;
          Alcotest.test_case "reply" `Quick test_reply;
          Alcotest.test_case "sync receive" `Quick test_sync_receive;
          Alcotest.test_case "pick sync trigger" `Quick test_pick_sync_trigger;
          Alcotest.test_case "nested scopes / empty branches" `Quick
            test_nested_scopes_and_empty_branches;
          Alcotest.test_case "table merges over silent" `Quick
            test_table_merges_on_silent;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "switch conjunction" `Quick test_switch_annotation;
          Alcotest.test_case "single branch silent" `Quick
            test_single_branch_no_annotation;
          Alcotest.test_case "pick optional" `Quick test_pick_no_annotation;
          Alcotest.test_case "receive-first excluded" `Quick
            test_receive_first_annotation_excluded;
          Alcotest.test_case "firsts analysis" `Quick test_firsts;
        ] );
      ( "paper",
        [
          Alcotest.test_case "fig 6 buyer public" `Quick test_fig6_buyer_public;
          Alcotest.test_case "table 1" `Quick test_table1;
          Alcotest.test_case "fig 7 accounting public" `Quick
            test_fig7_accounting_public;
          Alcotest.test_case "table paths valid" `Quick
            test_table_anchor_paths_valid;
          Alcotest.test_case "deterministic publics" `Quick
            test_generation_is_deterministic_automaton;
        ] );
    ]
