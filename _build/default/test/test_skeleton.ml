(* Skeleton synthesis: public process → private process template
   (inverse of public-process generation). *)

module C = Chorev
module Sk = C.Skeleton
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let gen = C.Public_gen.public

let roundtrip name party proc =
  let pub = gen proc in
  match Sk.synthesize ~party pub with
  | Ok p ->
      check_bool (name ^ " valid") true (C.Bpel.Validate.is_valid p);
      check_bool
        (name ^ " regenerates the same language")
        true
        (C.Equiv.equal_language pub (gen p))
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_roundtrip_scenario () =
  roundtrip "buyer" "B" P.buyer_process;
  roundtrip "accounting" "A" P.accounting_process;
  roundtrip "logistics" "L" P.logistics_process;
  roundtrip "accounting-cancel" "A" P.accounting_cancel;
  roundtrip "accounting-once" "A" P.accounting_once;
  roundtrip "buyer-once" "B" P.buyer_once

let test_stub_from_view () =
  (* synthesizing the buyer's side from the accounting's buyer view
     yields a process consistent with the accounting — a conforming
     partner stub, the composition building block of the paper's
     ref [16] *)
  let view = C.View.tau ~observer:"B" (gen P.accounting_process) in
  match Sk.synthesize ~name:"buyer-stub" ~party:"B" view with
  | Ok stub ->
      check_bool "stub consistent" true
        (C.Consistency.consistent (gen stub) view);
      (* and its structure is the paper's: loop + choice *)
      let body = C.Bpel.Process.body stub in
      check_bool "has a loop" true
        (List.exists
           (fun (_, a) ->
             match a with C.Bpel.Activity.While _ -> true | _ -> false)
           (C.Bpel.Activity.all_nodes body))
  | Error e -> Alcotest.fail e

let test_structure_recovery () =
  (* external alternatives become a pick, internal ones a switch *)
  let recv2 =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ]
      ~edges:[ (0, "A#B#xOp", 1); (0, "A#B#yOp", 1) ]
      ()
  in
  (match Sk.synthesize ~party:"B" recv2 with
  | Ok p ->
      check_bool "pick for receives" true
        (List.exists
           (fun (_, a) ->
             match a with C.Bpel.Activity.Pick _ -> true | _ -> false)
           (C.Bpel.Activity.all_nodes (C.Bpel.Process.body p)))
  | Error e -> Alcotest.fail e);
  let send2 =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ]
      ~edges:[ (0, "B#A#xOp", 1); (0, "B#A#yOp", 1) ]
      ()
  in
  match Sk.synthesize ~party:"B" send2 with
  | Ok p ->
      check_bool "switch for sends" true
        (List.exists
           (fun (_, a) ->
             match a with C.Bpel.Activity.Switch _ -> true | _ -> false)
           (C.Bpel.Activity.all_nodes (C.Bpel.Process.body p)))
  | Error e -> Alcotest.fail e

let test_accept_and_continue () =
  (* a final state with continuation: stop-or-go switch *)
  let a =
    C.Afsa.of_strings ~start:0 ~finals:[ 1; 2 ]
      ~edges:[ (0, "B#A#xOp", 1); (1, "B#A#yOp", 2) ]
      ()
  in
  match Sk.synthesize ~party:"B" a with
  | Ok p ->
      let pub = gen p in
      check_bool "short word" true
        (C.Trace.accepts pub [ C.Label.of_string_exn "B#A#xOp" ]);
      check_bool "long word" true
        (C.Trace.accepts pub
           [ C.Label.of_string_exn "B#A#xOp"; C.Label.of_string_exn "B#A#yOp" ])
  | Error e -> Alcotest.fail e

let test_rejections () =
  let eps =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ] ~edges:[ (0, "", 1) ] ()
  in
  check_bool "eps rejected" true (Result.is_error (Sk.synthesize ~party:"B" eps));
  let ndet =
    C.Afsa.of_strings ~start:0 ~finals:[ 1; 2 ]
      ~edges:[ (0, "A#B#xOp", 1); (0, "A#B#xOp", 2) ]
      ()
  in
  check_bool "nondeterminism rejected" true
    (Result.is_error (Sk.synthesize ~party:"B" ndet));
  let foreign =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ] ~edges:[ (0, "X#Y#zOp", 1) ] ()
  in
  check_bool "foreign labels rejected" true
    (Result.is_error (Sk.synthesize ~party:"B" foreign));
  let mixed =
    C.Afsa.of_strings ~start:0 ~finals:[ 1 ]
      ~edges:[ (0, "A#B#inOp", 1); (0, "B#A#outOp", 1) ]
      ()
  in
  check_bool "mixed direction rejected" true
    (Result.is_error (Sk.synthesize ~party:"B" mixed))

let test_roundtrip_random_protocols () =
  for seed = 0 to 9 do
    let a = C.Workload.Gen_afsa.random_protocol ~seed ~states:8 () in
    let a = C.Minimize.minimize a in
    match Sk.synthesize ~party:"A" a with
    | Ok p ->
        check_bool
          (Printf.sprintf "seed %d language" seed)
          true
          (C.Equiv.equal_language a (gen p))
    | Error _ ->
        (* mixed-direction states are legitimate rejections *)
        ()
  done

let () =
  Alcotest.run "skeleton"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "scenario processes" `Quick test_roundtrip_scenario;
          Alcotest.test_case "random protocols" `Quick
            test_roundtrip_random_protocols;
        ] );
      ( "structure",
        [
          Alcotest.test_case "stub from view" `Quick test_stub_from_view;
          Alcotest.test_case "pick vs switch" `Quick test_structure_recovery;
          Alcotest.test_case "accept and continue" `Quick
            test_accept_and_continue;
        ] );
      ("rejections", [ Alcotest.test_case "errors" `Quick test_rejections ]);
    ]
