(* Bilateral views τ_P (Sec. 3.4). *)

module C = Chorev
module A = C.Afsa
module F = C.Formula

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let l = C.Label.of_string_exn
let word = List.map l

let three_party =
  (* A talks to B then to L then back to B *)
  A.of_strings ~start:0 ~finals:[ 3 ]
    ~edges:
      [ (0, "B#A#req", 1); (1, "A#L#work", 2); (2, "A#B#rsp", 3) ]
    ~ann:[ (1, F.and_ (F.var "A#L#work") (F.var "A#B#rsp")) ]
    ()

let test_relabel_hides () =
  let v = C.View.tau ~observer:"B" three_party in
  check_bool "B view hides L message" true
    (C.Trace.accepts v (word [ "B#A#req"; "A#B#rsp" ]));
  check_bool "hidden label gone" true
    (List.for_all
       (fun (lab : C.Label.t) -> C.Label.involves "B" lab)
       (A.alphabet v))

let test_view_annotation_substitution () =
  (* hidden obligations are assumed fulfilled: only the B-visible var
     stays *)
  let v = C.View.tau ~observer:"B" three_party in
  let anns = A.annotations v in
  check_bool "only visible vars in annotations" true
    (List.for_all
       (fun (_, f) ->
         List.for_all
           (fun var ->
             match C.Label.of_string var with
             | Ok lab -> C.Label.involves "B" lab
             | Error _ -> false)
           (F.vars_list f))
       anns)

let test_view_of_logistics () =
  let v = C.View.tau ~observer:"L" three_party in
  check_bool "L sees only its message" true
    (C.Trace.accepts v (word [ "A#L#work" ]));
  check_int "alphabet 1" 1 (List.length (A.alphabet v))

let test_view_idempotent () =
  let v = C.View.tau ~observer:"B" three_party in
  let v2 = C.View.tau ~observer:"B" v in
  check_bool "idempotent up to language" true (C.Equiv.equal_language v v2)

let test_tau_raw_language_equals_tau () =
  let r = C.View.tau_raw ~observer:"B" three_party in
  let m = C.View.tau ~observer:"B" three_party in
  check_bool "raw and minimized same language" true (C.Equiv.equal_language r m)

let test_parties () =
  Alcotest.(check (list string))
    "parties" [ "A"; "B"; "L" ]
    (C.View.parties three_party)

(* Fig. 8 of the paper: views of the accounting public process. *)
let test_fig8 () =
  let pub = C.Public_gen.public C.Scenario.Procurement.accounting_process in
  let vb = C.View.tau ~observer:"B" pub in
  let vl = C.View.tau ~observer:"L" pub in
  check_int "buyer view states (Fig 8a)" 5 (A.num_states vb);
  check_int "logistics view states (Fig 8b)" 5 (A.num_states vl);
  check_bool "buyer conversation" true
    (C.Trace.accepts vb
       (word [ "B#A#orderOp"; "A#B#deliveryOp"; "B#A#terminateOp" ]));
  check_bool "logistics conversation" true
    (C.Trace.accepts vl
       (word [ "A#L#deliverOp"; "L#A#deliver_confOp"; "A#L#terminateLOp" ]));
  check_bool "sync op both directions" true
    (C.Trace.accepts vl
       (word
          [
            "A#L#deliverOp";
            "L#A#deliver_confOp";
            "A#L#get_statusLOp";
            "L#A#get_statusLOp";
            "A#L#terminateLOp";
          ]))

let () =
  Alcotest.run "view"
    [
      ( "tau",
        [
          Alcotest.test_case "relabel hides" `Quick test_relabel_hides;
          Alcotest.test_case "annotation substitution" `Quick
            test_view_annotation_substitution;
          Alcotest.test_case "logistics view" `Quick test_view_of_logistics;
          Alcotest.test_case "idempotent" `Quick test_view_idempotent;
          Alcotest.test_case "raw = minimized (language)" `Quick
            test_tau_raw_language_equals_tau;
          Alcotest.test_case "parties" `Quick test_parties;
        ] );
      ("fig8", [ Alcotest.test_case "accounting views" `Quick test_fig8 ]);
    ]
