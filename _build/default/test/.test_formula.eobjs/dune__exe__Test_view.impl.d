test/test_view.ml: Alcotest Chorev List
