test/test_choreography.mli:
