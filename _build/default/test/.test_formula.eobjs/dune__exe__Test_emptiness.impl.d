test/test_emptiness.ml: Alcotest Chorev List Printf
