test/test_formula.ml: Alcotest Chorev List Printf QCheck QCheck_alcotest Stdlib String
