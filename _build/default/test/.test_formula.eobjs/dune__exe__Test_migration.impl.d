test/test_migration.ml: Alcotest Chorev Fmt List Option Printf
