test/test_workload.ml: Alcotest Chorev List Printf Result String
