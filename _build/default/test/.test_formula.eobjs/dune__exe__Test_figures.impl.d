test/test_figures.ml: Alcotest Chorev List Option
