test/test_props.ml: Alcotest Chorev List Printf QCheck QCheck_alcotest
