test/test_change.ml: Alcotest Chorev List Result String
