test/test_mapping.ml: Alcotest Chorev List Printf
