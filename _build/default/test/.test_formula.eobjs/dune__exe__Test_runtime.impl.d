test/test_runtime.ml: Alcotest Chorev List
