test/test_emptiness.mli:
