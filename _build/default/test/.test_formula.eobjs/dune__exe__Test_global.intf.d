test/test_global.mli:
