test/test_ablation.ml: Alcotest Chorev
