test/test_afsa.mli:
