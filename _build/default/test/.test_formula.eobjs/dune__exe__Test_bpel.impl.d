test/test_bpel.ml: Alcotest Chorev List Option Result String
