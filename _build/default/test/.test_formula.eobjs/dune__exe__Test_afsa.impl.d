test/test_afsa.ml: Alcotest Chorev List Result String
