test/test_integration.ml: Alcotest Chorev List Printf String
