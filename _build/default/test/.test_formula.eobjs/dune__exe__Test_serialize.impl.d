test/test_serialize.ml: Alcotest Chorev Chorev_afsa Chorev_bpel Chorev_formula Filename Fun List Printf QCheck QCheck_alcotest Result String Sys
