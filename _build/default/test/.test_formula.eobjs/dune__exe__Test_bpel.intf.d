test/test_bpel.mli:
