test/test_propagate.ml: Alcotest Chorev List Option String
