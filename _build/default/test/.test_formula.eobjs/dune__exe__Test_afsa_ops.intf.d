test/test_afsa_ops.mli:
