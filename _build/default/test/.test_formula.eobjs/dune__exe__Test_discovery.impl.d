test/test_discovery.ml: Alcotest Chorev List String
