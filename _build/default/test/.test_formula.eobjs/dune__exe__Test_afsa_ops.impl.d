test/test_afsa_ops.ml: Alcotest Chorev List Printf QCheck QCheck_alcotest
