test/test_skeleton.ml: Alcotest Chorev List Printf Result
