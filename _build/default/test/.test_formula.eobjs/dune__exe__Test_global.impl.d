test/test_global.ml: Alcotest Chorev List String
