test/test_choreography.ml: Alcotest Chorev List
