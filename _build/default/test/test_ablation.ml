(* Ablations: demonstrate that the naive alternatives to the semantic
   decisions of DESIGN.md actually break the paper's figures — i.e.
   the choices are load-bearing, not incidental. *)

module C = Chorev
module P = C.Scenario.Procurement

let check_bool = Alcotest.(check bool)
let gen = C.Public_gen.public

(* Decision 1: annotated emptiness must be a GREATEST fixpoint. *)
let test_least_fixpoint_rejects_loops () =
  let buyer = gen P.buyer_process in
  let view = C.View.tau ~observer:"B" (gen P.accounting_process) in
  let i = C.Ops.intersect buyer view in
  (* the real semantics: consistent (non-empty) *)
  check_bool "gfp: consistent" true (C.Emptiness.is_nonempty i);
  (* the least fixpoint wrongly rejects the mutually-supporting
     tracking loop *)
  check_bool "lfp: wrongly empty" true (C.Ablation.is_empty_least_fixpoint i)

let test_least_fixpoint_agrees_on_acyclic () =
  (* on the acyclic Fig. 5 example both fixpoints agree *)
  let i = C.Scenario.Fig5.intersection () in
  check_bool "both empty" true
    (C.Emptiness.is_empty i && C.Ablation.is_empty_least_fixpoint i);
  check_bool "party A: both nonempty" true
    (C.Emptiness.is_nonempty C.Scenario.Fig5.party_a
    && not (C.Ablation.is_empty_least_fixpoint C.Scenario.Fig5.party_a))

(* Decision 2: minimization must respect annotations. *)
let test_minimize_must_respect_annotations () =
  (* two states, equal language, different obligations *)
  let a =
    C.Afsa.of_strings ~start:0 ~finals:[ 3 ]
      ~edges:
        [
          (0, "B#A#go1Op", 1); (0, "B#A#go2Op", 2);
          (1, "A#B#xOp", 3); (2, "A#B#xOp", 3);
        ]
      ~ann:[ (1, C.Formula.var "A#B#xOp") ]
      ()
  in
  let proper = C.Minimize.minimize a in
  let naive = C.Ablation.minimize_ignoring_annotations a in
  (* the naive variant merges states 1 and 2 and drops the obligation *)
  check_bool "naive smaller" true
    (C.Afsa.num_states naive < C.Afsa.num_states proper);
  check_bool "naive lost the annotation" false (C.Afsa.has_annotations naive);
  check_bool "proper kept the annotation" true (C.Afsa.has_annotations proper)

let test_minimize_ablation_breaks_fig16 () =
  (* running the subtractive-change check with annotation-oblivious
     minimization of the buyer public changes the verdict *)
  let buyer_naive =
    C.Ablation.minimize_ignoring_annotations (gen P.buyer_process)
  in
  let view = C.View.tau ~observer:"B" (gen P.accounting_once) in
  (* real: empty (variant change, Fig. 16); naive: non-empty — the
     subtractive change would be silently mis-classified as invariant *)
  check_bool "real verdict: variant" true
    (C.Emptiness.is_empty (C.Ops.intersect view (gen P.buyer_process)));
  check_bool "naive verdict: wrongly invariant" true
    (C.Emptiness.is_nonempty (C.Ops.intersect view buyer_naive))

(* Decision 3: views must substitute hidden variables with TRUE. *)
let test_view_hidden_false_kills_protocol () =
  let acc = gen P.accounting_cancel in
  (* proper buyer view keeps a satisfiable protocol *)
  let proper = C.View.tau ~observer:"B" acc in
  check_bool "proper view nonempty" true (C.Emptiness.is_nonempty proper);
  (* substituting hidden obligations with false destroys it: the
     cancel-switch annotation also mandates the (hidden) logistics
     deliverOp *)
  let broken = C.Ablation.tau_hidden_false ~observer:"B" acc in
  check_bool "hidden-false view empty" true (C.Emptiness.is_empty broken)

(* Decision 4: union must preserve annotations (the De Morgan form the
   paper quotes is language-correct but annotation-oblivious). *)
let test_de_morgan_union_loses_annotations () =
  let buyer = gen P.buyer_process in
  let view = C.View.tau ~observer:"B" (gen P.accounting_cancel) in
  let delta = C.Ops.difference view buyer in
  let keeping = C.Ops.union delta buyer in
  let de_morgan = C.Ops.union_de_morgan delta buyer in
  check_bool "same language" true (C.Equiv.equal_language keeping de_morgan);
  check_bool "direct union keeps annotations" true
    (C.Afsa.has_annotations keeping);
  check_bool "de morgan drops annotations" false
    (C.Afsa.has_annotations de_morgan)

let () =
  Alcotest.run "ablation"
    [
      ( "emptiness fixpoint",
        [
          Alcotest.test_case "lfp rejects loops" `Quick
            test_least_fixpoint_rejects_loops;
          Alcotest.test_case "agree on acyclic" `Quick
            test_least_fixpoint_agrees_on_acyclic;
        ] );
      ( "minimization",
        [
          Alcotest.test_case "annotation partition" `Quick
            test_minimize_must_respect_annotations;
          Alcotest.test_case "fig16 breaks without it" `Quick
            test_minimize_ablation_breaks_fig16;
        ] );
      ( "views",
        [
          Alcotest.test_case "hidden must default true" `Quick
            test_view_hidden_false_kills_protocol;
        ] );
      ( "union",
        [
          Alcotest.test_case "de morgan loses annotations" `Quick
            test_de_morgan_union_loses_annotations;
        ] );
    ]
