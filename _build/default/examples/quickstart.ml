(* Quickstart: model the paper's procurement choreography, derive the
   public processes, check bilateral consistency, and run a
   conversation.

     dune exec examples/quickstart.exe *)

module C = Chorev
open C.Scenario.Procurement

let () =
  (* 1. Private processes are plain OCaml values (Sec. 2 of the paper).
     The scenario library ships the paper's buyer / accounting /
     logistics processes; building your own uses the same
     constructors — see lib/scenario/procurement.ml. *)
  Fmt.pr "=== Buyer private process (Fig. 3) ===@.%s@.@."
    (C.Bpel.Pp.to_string buyer_process);

  (* 2. Generate the public process (an annotated FSA) and the mapping
     table relating its states back to BPEL blocks (Sec. 3.3). *)
  let public_buyer, table = C.Public_gen.generate buyer_process in
  Fmt.pr "=== Buyer public process (Fig. 6) ===@.%s@."
    (C.Afsa.Pp.to_string ~abbrev:true public_buyer);
  Fmt.pr "=== Mapping table (Table 1) ===@.%s@.@." (C.Table.to_string table);

  (* 3. Take the buyer's bilateral view of the accounting process
     (Sec. 3.4) and check consistency = deadlock-free interaction. *)
  let public_acc = C.Public_gen.public accounting_process in
  let view = C.View.tau ~observer:buyer public_acc in
  let verdict = C.Consistency.check public_buyer view in
  Fmt.pr "buyer ↔ accounting consistent: %b@." verdict.C.Consistency.consistent;
  (match verdict.C.Consistency.witness with
  | Some conversation ->
      Fmt.pr "a deadlock-free conversation: %a@.@."
        (Fmt.list ~sep:(Fmt.any " → ") (fun ppf l ->
             Fmt.string ppf (C.Label.to_string l)))
        conversation
  | None -> ());

  (* 4. Execute the whole 3-party choreography operationally. *)
  let system =
    C.Runtime.Exec.make
      (List.map (fun (p, proc) -> (p, C.Public_gen.public proc)) parties)
  in
  let run = C.Runtime.Exec.random_run ~seed:2026 system in
  Fmt.pr "a random execution (%s):@.  %a@."
    (match run.C.Runtime.Exec.outcome with
    | C.Runtime.Exec.Completed -> "completed"
    | C.Runtime.Exec.Deadlock -> "deadlock"
    | C.Runtime.Exec.Running -> "truncated")
    (Fmt.list ~sep:(Fmt.any "@.  ") (fun ppf l ->
         Fmt.string ppf (C.Label.to_string l)))
    run.C.Runtime.Exec.trace;

  let e = C.Runtime.Exec.explore system in
  Fmt.pr
    "state space: %d configurations, %d deadlocks, completion reachable: %b@."
    e.C.Runtime.Exec.configurations
    (List.length e.C.Runtime.Exec.deadlocks)
    (e.C.Runtime.Exec.completions > 0);

  (* 5. Export DOT for rendering with graphviz. *)
  C.Dot.to_file ~name:"buyer_public" ~path:"buyer_public.dot" public_buyer;
  Fmt.pr "wrote buyer_public.dot@."
