(* Process-annotated service discovery (Sec. 6 of the paper): a UDDI
   extended with public processes and bilateral consistency — keyword
   matching returns services that *mention* the right operations;
   consistency matching returns services one can actually talk to.

     dune exec examples/service_discovery.exe *)

module C = Chorev
module D = C.Discovery
open C.Scenario.Procurement

let () =
  (* A registry with several accounting-like services. *)
  let registry = D.create () in
  D.advertise_process registry ~name:"accounting-standard"
    ~description:"the paper's accounting department (Fig. 2)"
    accounting_process;
  D.advertise_process registry ~name:"accounting-with-cancel"
    ~description:"may cancel orders (Fig. 11)" accounting_cancel;
  D.advertise_process registry ~name:"accounting-track-once"
    ~description:"at most one tracking request (Fig. 15)" accounting_once;
  D.advertise_process registry ~name:"logistics" logistics_process;
  (* a decoy that shares every operation name but speaks them in the
     wrong order *)
  D.advertise registry ~name:"decoy-accounting" ~party:accounting
    ~description:"right vocabulary, wrong conversation"
    (C.Afsa.of_strings ~start:0 ~finals:[ 2 ]
       ~edges:[ (0, "A#B#deliveryOp", 1); (1, "B#A#orderOp", 2) ]
       ());
  Fmt.pr "registry: %d services@.@." (D.size registry);

  (* The buyer of Fig. 3 looks for a partner. *)
  let requester = C.Public_gen.public buyer_process in
  let precise, keyword = D.precision registry ~party:buyer ~requester in
  Fmt.pr "keyword matches (classical UDDI): %a@."
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    keyword;
  Fmt.pr "consistency matches (this framework): %a@.@."
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    precise;

  List.iter
    (fun m -> Fmt.pr "  • %a@." D.pp_match m)
    (D.query registry ~party:buyer ~requester);

  (* The adapted buyer of Fig. 14 can additionally talk to the
     cancel-capable accounting — discovery reflects evolution. *)
  let adapted = C.Public_gen.public buyer_with_cancel in
  Fmt.pr "@.after adopting the Fig. 14 adaptation, the buyer matches:@.";
  List.iter
    (fun m -> Fmt.pr "  • %a@." D.pp_match m)
    (D.query registry ~party:buyer ~requester:adapted)
