examples/cancel_order.mli:
