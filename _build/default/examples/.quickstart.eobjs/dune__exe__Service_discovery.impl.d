examples/service_discovery.ml: Chorev Fmt List
