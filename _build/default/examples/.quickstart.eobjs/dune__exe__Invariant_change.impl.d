examples/invariant_change.ml: Chorev Fmt List
