examples/parcel_tracking_limit.ml: Chorev Fmt List
