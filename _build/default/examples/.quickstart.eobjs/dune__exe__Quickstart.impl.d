examples/quickstart.ml: Chorev Fmt List
