examples/multiparty_protocol.ml: Chorev Fmt List
