examples/dynamic_migration.mli:
