examples/service_discovery.mli:
