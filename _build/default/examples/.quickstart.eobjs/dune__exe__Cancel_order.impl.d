examples/cancel_order.ml: Chorev Fmt List
