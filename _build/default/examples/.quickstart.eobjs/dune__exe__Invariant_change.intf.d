examples/invariant_change.mli:
