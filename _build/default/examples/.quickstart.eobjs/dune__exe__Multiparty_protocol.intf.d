examples/multiparty_protocol.mli:
