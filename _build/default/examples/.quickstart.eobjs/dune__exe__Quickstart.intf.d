examples/quickstart.mli:
