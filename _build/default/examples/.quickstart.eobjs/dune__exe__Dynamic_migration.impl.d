examples/dynamic_migration.ml: Chorev Fmt List
