examples/parcel_tracking_limit.mli:
