(** Multi-lateral (global) analysis of a choreography.

    The paper checks consistency bilaterally (Sec. 3.2) and notes that
    its companion work [16, 17] derives and validates the *overall*
    cross-organizational process decentrally. This module supplies the
    global view: the conversation automaton of the whole choreography —
    the synchronous product of all public processes — and the global
    correctness notions it supports:

    - {e global consistency}: some conversation completes (every party
      reaches a final state);
    - {e global deadlock-freedom}: no reachable configuration is stuck
      short of completion.

    Bilateral consistency of all pairs does *not* imply global
    deadlock-freedom (after the paper's §5.2 cancel change, a
    cancellation strands logistics — see EXPERIMENTS.md); this module
    diagnoses exactly such situations, naming the stuck parties. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Exec = Chorev_runtime.Exec

let system (t : Model.t) =
  Exec.make (List.map (fun p -> (p, Model.public t p)) (Model.parties t))

(** The conversation automaton: states are joint configurations, edges
    are the joint steps, finals are completed configurations. Built by
    BFS over the reachable joint state space (bounded). *)
let conversation_automaton ?(max_configs = 100_000) (t : Model.t) : Afsa.t =
  let sys = system t in
  let ids = Hashtbl.create 256 in
  let next = ref 0 in
  let id_of c =
    let k = Exec.key c in
    match Hashtbl.find_opt ids k with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add ids k i;
        i
  in
  let c0 = Exec.initial sys in
  let q = Queue.create () in
  Queue.add c0 q;
  let seen = Hashtbl.create 256 in
  Hashtbl.add seen (Exec.key c0) ();
  let edges = ref [] in
  let finals = ref [] in
  let truncated = ref false in
  while not (Queue.is_empty q) do
    let c = Queue.pop q in
    let i = id_of c in
    if Exec.completed c then finals := i :: !finals;
    List.iter
      (fun (l, c') ->
        let j = id_of c' in
        edges := (i, Chorev_afsa.Sym.L l, j) :: !edges;
        if not (Hashtbl.mem seen (Exec.key c')) then
          if Hashtbl.length seen >= max_configs then truncated := true
          else begin
            Hashtbl.add seen (Exec.key c') ();
            Queue.add c' q
          end)
      (Exec.enabled c)
  done;
  if !truncated then
    invalid_arg "Global.conversation_automaton: state space truncated";
  Afsa.make ~start:(id_of c0) ~finals:!finals ~edges:!edges ()

type diagnosis = {
  globally_consistent : bool;
      (** a completing global conversation exists *)
  deadlock_free : bool;  (** no stuck non-final configuration *)
  bilateral_consistent : bool;  (** all interacting pairs consistent *)
  deadlocks : (Chorev_afsa.Label.t list * string list) list;
      (** for each reachable deadlock: a trace leading to it and the
          parties stuck short of a final state *)
}

(* Shortest trace to each deadlocked configuration. *)
let deadlock_traces sys max_configs =
  let q = Queue.create () in
  let seen = Hashtbl.create 256 in
  let c0 = Exec.initial sys in
  Hashtbl.add seen (Exec.key c0) ();
  Queue.add (c0, []) q;
  let out = ref [] in
  let truncated = ref false in
  while not (Queue.is_empty q) do
    let c, path = Queue.pop q in
    (match Exec.status c with
    | Exec.Deadlock ->
        let stuck =
          List.filter_map
            (fun (ps : Exec.party_state) ->
              if Afsa.is_final ps.automaton ps.state then None
              else Some ps.party)
            c
        in
        out := (List.rev path, stuck) :: !out
    | _ -> ());
    List.iter
      (fun (l, c') ->
        if not (Hashtbl.mem seen (Exec.key c')) then
          if Hashtbl.length seen >= max_configs then truncated := true
          else begin
            Hashtbl.add seen (Exec.key c') ();
            Queue.add (c', l :: path) q
          end)
      (Exec.enabled c)
  done;
  (List.rev !out, !truncated)

(** Full global diagnosis of a choreography. *)
let diagnose ?(max_configs = 100_000) (t : Model.t) : diagnosis =
  let sys = system t in
  let e = Exec.explore ~max_configs sys in
  let deadlocks, _ = deadlock_traces sys max_configs in
  {
    globally_consistent = e.Exec.completions > 0;
    deadlock_free = e.Exec.deadlocks = [];
    bilateral_consistent = Consistency.consistent t;
    deadlocks;
  }

let pp_diagnosis ppf d =
  Fmt.pf ppf
    "@[<v>global consistency: %b@,global deadlock-freedom: %b@,bilateral \
     consistency (all pairs): %b@,%a@]"
    d.globally_consistent d.deadlock_free d.bilateral_consistent
    (Fmt.list ~sep:Fmt.cut (fun ppf (trace, stuck) ->
         Fmt.pf ppf "deadlock after [%a]; stuck: %a"
           (Fmt.list ~sep:(Fmt.any " → ") (fun ppf l ->
                Fmt.string ppf (Label.to_string l)))
           trace
           (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
           stuck))
    d.deadlocks
