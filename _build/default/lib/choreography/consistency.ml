(** Choreography-wide consistency: every pair of interacting parties
    must be bilaterally consistent on their mutual views (Sec. 3.4 —
    "as a basis for bilateral consistency checking, it has to be ensured
    that the processes to be compared are representing the bilateral
    message exchanges only"). *)

module View = Chorev_afsa.View

type pair_verdict = {
  party_a : string;
  party_b : string;
  consistent : bool;
  witness : Chorev_afsa.Label.t list option;
}

(** Bilateral consistency of two parties of the choreography: each
    side's view of the other is intersected. *)
let check_pair t p1 p2 =
  let v1 = View.tau ~observer:p2 (Model.public t p1) in
  let v2 = View.tau ~observer:p1 (Model.public t p2) in
  let r = Chorev_afsa.Consistency.check v1 v2 in
  {
    party_a = p1;
    party_b = p2;
    consistent = r.Chorev_afsa.Consistency.consistent;
    witness = r.Chorev_afsa.Consistency.witness;
  }

let consistent_pair t p1 p2 = (check_pair t p1 p2).consistent

(** Verdicts for every interacting pair. *)
let check_all t = List.map (fun (a, b) -> check_pair t a b) (Model.pairs t)

(** The choreography is consistent iff all interacting pairs are. *)
let consistent t = List.for_all (fun v -> v.consistent) (check_all t)

(** The protocol agreed between two parties — the paper's
    "A ∩ B ≠ ∅ … the protocol (choreography) between them" (Sec. 4.2):
    the annotated intersection of their mutual views. Empty iff the
    pair is inconsistent. *)
let protocol t p1 p2 =
  let v1 = View.tau ~observer:p2 (Model.public t p1) in
  let v2 = View.tau ~observer:p1 (Model.public t p2) in
  Chorev_afsa.Ops.intersect v1 v2

let pp_verdict ppf v =
  Fmt.pf ppf "%s ↔ %s: %s" v.party_a v.party_b
    (if v.consistent then "consistent" else "INCONSISTENT")
