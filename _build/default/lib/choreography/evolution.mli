(** The controlled-evolution pipeline of the paper's Fig. 4 across all
    partners, with transitive propagation: auto-applied partner
    adaptations are themselves changes and re-enter the pipeline until
    quiescence or [max_rounds]. *)

type partner_report = {
  partner : string;
  verdict : Chorev_change.Classify.verdict;
  outcome : Chorev_propagate.Engine.outcome option;
      (** [None] for invariant changes *)
}

type round = {
  originator : string;
  public_changed : bool;
  partners : partner_report list;
}

type report = {
  rounds : round list;
  choreography : Model.t;  (** the evolved choreography *)
  consistent : bool;
}

val evolve :
  ?auto_apply:bool ->
  ?max_rounds:int ->
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  report

val dry_run :
  Model.t ->
  owner:string ->
  changed:Chorev_bpel.Process.t ->
  partner_report list
(** Impact analysis: classification and (for variant partners)
    propagation suggestions, with nothing applied anywhere. Empty when
    the public view is unchanged. *)

val evolve_op :
  ?auto_apply:bool ->
  ?max_rounds:int ->
  Model.t ->
  owner:string ->
  Chorev_change.Ops.t ->
  (report, string) result
(** Apply a change operation to the owner's private process, then
    evolve. *)

val pp_round : Format.formatter -> round -> unit
val pp_report : Format.formatter -> report -> unit
