lib/choreography/consistency.pp.mli: Chorev_afsa Format Model
