lib/choreography/model.pp.mli: Chorev_afsa Chorev_bpel Chorev_mapping
