lib/choreography/global.pp.ml: Chorev_afsa Chorev_runtime Consistency Fmt Hashtbl List Model Queue
