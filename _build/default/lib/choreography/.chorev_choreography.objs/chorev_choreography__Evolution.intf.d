lib/choreography/evolution.pp.mli: Chorev_bpel Chorev_change Chorev_propagate Format Model
