lib/choreography/global.pp.mli: Chorev_afsa Chorev_runtime Format Model
