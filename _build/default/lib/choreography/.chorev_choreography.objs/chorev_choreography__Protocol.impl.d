lib/choreography/protocol.pp.ml: Chorev_afsa Chorev_change Chorev_propagate Consistency Fmt List Model Option Queue
