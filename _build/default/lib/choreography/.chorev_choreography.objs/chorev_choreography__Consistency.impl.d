lib/choreography/consistency.pp.ml: Chorev_afsa Fmt List Model
