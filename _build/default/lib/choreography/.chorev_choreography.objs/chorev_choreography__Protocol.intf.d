lib/choreography/protocol.pp.mli: Chorev_afsa Chorev_bpel Format Model
