lib/choreography/evolution.pp.ml: Chorev_afsa Chorev_bpel Chorev_change Chorev_mapping Chorev_propagate Consistency Fmt List Model Process String
