lib/choreography/model.pp.ml: Chorev_afsa Chorev_bpel Chorev_mapping List Map Printf Process String
