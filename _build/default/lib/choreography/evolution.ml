(** The controlled-evolution pipeline of the paper's Fig. 4, across all
    partners of a choreography.

    A party changes its private process. The pipeline

    1. regenerates the changer's public process ("producing public aFSA
       from scratch");
    2. if the public view is unchanged, stops — no propagation
       ("no propagation necessary");
    3. otherwise classifies the change per partner (Defs. 5/6) on the
       bilateral views;
    4. for variant partners, runs the propagation engine of Sec. 5
       (suggestions + optional auto-apply + re-check);
    5. returns the evolved choreography together with a full report.

    Auto-applied partner adaptations themselves count as changes of
    those partners' private processes; the pipeline re-runs for them
    (transitive propagation) until the choreography is quiescent or
    [max_rounds] is reached. *)

module Afsa = Chorev_afsa.Afsa
module Classify = Chorev_change.Classify
module Engine = Chorev_propagate.Engine
open Chorev_bpel

type partner_report = {
  partner : string;
  verdict : Classify.verdict;
  outcome : Engine.outcome option;  (** [None] for invariant changes *)
}

type round = {
  originator : string;
  public_changed : bool;
  partners : partner_report list;
}

type report = {
  rounds : round list;
  choreography : Model.t;  (** the evolved choreography *)
  consistent : bool;  (** all-pairs consistency afterwards *)
}

let classify_partner ~owner ~old_public ~new_public t partner =
  let partner_view =
    Chorev_afsa.View.tau ~observer:owner (Model.public t partner)
  in
  Classify.classify ~owner ~partner ~old_public ~new_public
    ~partner_public:partner_view

(* One round: [changed] replaces [owner]'s private process; returns the
   round report, the updated choreography, and the list of partners
   whose private processes were auto-adapted (next round's
   originators). *)
let run_round ~auto_apply t owner (changed : Process.t) =
  let old_public = Model.public t owner in
  let t' = Model.update t changed in
  let new_public = Model.public t' owner in
  let public_changed =
    not (Classify.public_unchanged ~old_public ~new_public)
  in
  if not public_changed then
    ({ originator = owner; public_changed = false; partners = [] }, t', [])
  else
    let partners =
      List.filter (fun p -> Model.interact t' owner p) (Model.parties t')
    in
    let reports, t'', adapted =
      List.fold_left
        (fun (reports, t_acc, adapted) partner ->
          let verdict =
            classify_partner ~owner ~old_public ~new_public t_acc partner
          in
          if not (Classify.requires_propagation verdict) then
            ({ partner; verdict; outcome = None } :: reports, t_acc, adapted)
          else
            let direction =
              Engine.direction_of_framework verdict.Classify.framework
            in
            let outcome =
              Engine.propagate ~auto_apply ~direction ~a':new_public
                ~partner_private:(Model.private_ t_acc partner) ()
            in
            let t_acc, adapted =
              match outcome.Engine.adapted with
              | Some p' -> (Model.update t_acc p', (partner, p') :: adapted)
              | None -> (t_acc, adapted)
            in
            ( { partner; verdict; outcome = Some outcome } :: reports,
              t_acc,
              adapted ))
        ([], t', []) partners
    in
    ( { originator = owner; public_changed = true; partners = List.rev reports },
      t'',
      adapted )

(** Evolve the choreography by replacing [owner]'s private process with
    [changed]. [auto_apply] (default true) lets the engine adapt
    partners automatically; [max_rounds] bounds transitive propagation
    (default 8). *)
let evolve ?(auto_apply = true) ?(max_rounds = 8) t ~owner ~changed =
  let rec go t rounds budget pending =
    match pending with
    | [] ->
        {
          rounds = List.rev rounds;
          choreography = t;
          consistent = Consistency.consistent t;
        }
    | _ when budget = 0 ->
        {
          rounds = List.rev rounds;
          choreography = t;
          consistent = Consistency.consistent t;
        }
    | (owner, proc) :: rest ->
        let round, t', adapted = run_round ~auto_apply t owner proc in
        (* partners adapted in this round propagate onward, except back
           to processes already equal in the model *)
        let new_pending =
          List.filter
            (fun (p, proc') ->
              not
                (Chorev_afsa.Equiv.equal_annotated
                   (Chorev_mapping.Public_gen.public proc')
                   (Model.public t p)))
            adapted
        in
        go t' (round :: rounds) (budget - 1) (rest @ new_pending)
  in
  go t [] max_rounds [ (owner, changed) ]

(** Impact analysis: classify a proposed change against every partner
    without touching the choreography or anyone's private process — the
    report a process engineer reviews before committing (the decision
    diamond of the paper's Fig. 4). *)
let dry_run t ~owner ~changed : partner_report list =
  let old_public = Model.public t owner in
  let new_public = Chorev_mapping.Public_gen.public changed in
  if Classify.public_unchanged ~old_public ~new_public then []
  else
    Model.parties t
    |> List.filter (fun p -> (not (String.equal p owner)) && Model.interact t owner p)
    |> List.map (fun partner ->
           let verdict =
             classify_partner ~owner ~old_public ~new_public t partner
           in
           let outcome =
             if Classify.requires_propagation verdict then
               Some
                 (Engine.propagate ~auto_apply:false
                    ~direction:
                      (Engine.direction_of_framework verdict.Classify.framework)
                    ~a':new_public
                    ~partner_private:(Model.private_ t partner) ())
             else None
           in
           { partner; verdict; outcome })

(** Convenience: apply a change operation to [owner]'s private process
    and evolve. *)
let evolve_op ?auto_apply ?max_rounds t ~owner op =
  match Chorev_change.Ops.apply op (Model.private_ t owner) with
  | Error e -> Error e
  | Ok changed -> Ok (evolve ?auto_apply ?max_rounds t ~owner ~changed)

let pp_round ppf r =
  Fmt.pf ppf "@[<v>round by %s (public %s):@,%a@]" r.originator
    (if r.public_changed then "changed" else "unchanged")
    (Fmt.list ~sep:Fmt.cut (fun ppf pr ->
         Fmt.pf ppf "  %a%a" Classify.pp_verdict pr.verdict
           (Fmt.option (fun ppf o ->
                Fmt.pf ppf " → %a" Engine.pp_outcome o))
           pr.outcome))
    r.partners

let pp_report ppf rep =
  Fmt.pf ppf "@[<v>%a@,choreography consistent: %b@]"
    (Fmt.list ~sep:Fmt.cut pp_round)
    rep.rounds rep.consistent
