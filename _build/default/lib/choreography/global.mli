(** Multi-lateral (global) analysis: the conversation automaton of the
    whole choreography and global correctness notions. Bilateral
    consistency of all pairs does not imply global deadlock-freedom;
    {!diagnose} names the stuck parties when it fails (cf.
    EXPERIMENTS.md, "additional findings"). *)

module Afsa = Chorev_afsa.Afsa

val system : Model.t -> Chorev_runtime.Exec.system

val conversation_automaton : ?max_configs:int -> Model.t -> Afsa.t
(** Synchronous product of all public processes; finals are completed
    configurations. Raises [Invalid_argument] beyond [max_configs]. *)

type diagnosis = {
  globally_consistent : bool;
  deadlock_free : bool;
  bilateral_consistent : bool;
  deadlocks : (Chorev_afsa.Label.t list * string list) list;
      (** shortest trace to each deadlock and the stuck parties *)
}

val diagnose : ?max_configs:int -> Model.t -> diagnosis
val pp_diagnosis : Format.formatter -> diagnosis -> unit
