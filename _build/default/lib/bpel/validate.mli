(** Static well-formedness checks: registered operations, no
    self-communication, no empty/duplicate structures. *)

type issue = { path : Activity.path; message : string }

val show_issue : issue -> string

val check : Process.t -> issue list
val is_valid : Process.t -> bool
val pp_issue : Format.formatter -> issue -> unit
