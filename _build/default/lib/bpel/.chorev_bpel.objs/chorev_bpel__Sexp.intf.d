lib/bpel/sexp.pp.mli: Activity Process
