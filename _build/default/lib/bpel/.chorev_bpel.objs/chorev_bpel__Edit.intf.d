lib/bpel/edit.pp.mli: Activity Process
