lib/bpel/validate.pp.ml: Activity Fmt Hashtbl List Ppx_deriving_runtime Printf Process String Types
