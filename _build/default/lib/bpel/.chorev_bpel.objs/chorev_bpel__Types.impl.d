lib/bpel/types.pp.ml: List Option Ppx_deriving_runtime String
