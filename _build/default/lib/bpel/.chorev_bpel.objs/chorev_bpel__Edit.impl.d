lib/bpel/edit.pp.ml: Activity List Printf Process Result String
