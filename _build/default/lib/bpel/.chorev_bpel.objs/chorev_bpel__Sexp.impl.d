lib/bpel/sexp.pp.ml: Activity Buffer List Process String Types
