lib/bpel/validate.pp.mli: Activity Format Process
