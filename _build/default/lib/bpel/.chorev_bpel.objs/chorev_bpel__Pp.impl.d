lib/bpel/pp.pp.ml: Activity Buffer Fmt List Printf Process String Types
