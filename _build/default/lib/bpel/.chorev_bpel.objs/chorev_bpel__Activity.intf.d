lib/bpel/activity.pp.mli: Format
