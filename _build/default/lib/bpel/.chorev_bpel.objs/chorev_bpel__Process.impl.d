lib/bpel/process.pp.ml: Activity Chorev_afsa List Option String Types
