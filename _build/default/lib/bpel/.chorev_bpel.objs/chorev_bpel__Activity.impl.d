lib/bpel/activity.pp.ml: List Option Ppx_deriving_runtime Printf
