lib/bpel/process.pp.mli: Activity Chorev_afsa Types
