lib/bpel/pp.pp.mli: Activity Format Process
