lib/bpel/types.pp.mli: Format
