(** Block-structured process activities, after the BPEL 1.1 constructs
    the paper uses (Sec. 2). Structured activities carry names forming
    the block identifiers of the mapping table (Table 1); activities
    are addressed by positional paths for structural edits. *)

type comm = { partner : string; op : string }
(** Whether the operation is synchronous is decided by the registry. *)

val equal_comm : comm -> comm -> bool
val compare_comm : comm -> comm -> int
val pp_comm : Format.formatter -> comm -> unit
val show_comm : comm -> string

type t =
  | Receive of comm
  | Reply of comm
  | Invoke of comm
  | Assign of string
  | Empty
  | Terminate
  | Sequence of string * t list
  | Flow of string * t list
  | While of { name : string; cond : string; body : t }
  | Switch of { name : string; branches : branch list }
  | Pick of { name : string; on_messages : (comm * t) list }
  | Scope of string * t

and branch = { cond : string; body : t }

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string
val equal_branch : branch -> branch -> bool
val pp_branch : Format.formatter -> branch -> unit

(** {1 Constructors} *)

val receive : partner:string -> op:string -> t
val reply : partner:string -> op:string -> t
val invoke : partner:string -> op:string -> t
val seq : string -> t list -> t
val flow : string -> t list -> t
val while_ : string -> cond:string -> t -> t
val switch : string -> branch list -> t
val branch : cond:string -> t -> branch
val otherwise : t -> branch
val pick : string -> (comm * t) list -> t
val on_message : partner:string -> op:string -> t -> comm * t
val scope : string -> t -> t

(** {1 Structure} *)

val block_name : t -> string option
(** E.g. ["While:tracking"]; [None] for basic activities. *)

val kind : t -> string
val children : t -> t list

val with_children : t -> t list -> t
(** Rebuild with new children (same count). Raises [Invalid_argument]
    on arity mismatch. *)

(** {1 Positional paths} *)

type path = int list

val equal_path : path -> path -> bool
val compare_path : path -> path -> int
val pp_path : Format.formatter -> path -> unit
val show_path : path -> string

val find_at : path -> t -> t option
val update_at : path -> (t -> t) -> t -> t option

val fold : f:('a -> path -> t -> 'a) -> 'a -> t -> 'a
(** Depth-first preorder. *)

val all_nodes : t -> (path * t) list
val iter : f:(path -> t -> unit) -> t -> unit
val size : t -> int

val communications :
  t -> (path * [ `Receive | `Reply | `Invoke ] * comm) list
(** Every communication, pick arms counted as receives of their
    triggers. *)

val named_path : t -> path -> string list
(** The chain of block names along a position, as the mapping table
    presents it. *)
