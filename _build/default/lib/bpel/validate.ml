(** Static well-formedness checks on private processes. *)

type issue = { path : Activity.path; message : string } [@@deriving show]


let check (p : Process.t) : issue list =
  let issues = ref [] in
  let add path fmt = Printf.ksprintf (fun m -> issues := { path; message = m } :: !issues) fmt in
  let known_partner name =
    List.exists (fun (l : Types.partner_link) -> String.equal l.partner name) p.links
    || p.links = []
  in
  let check_comm path kind (c : Activity.comm) =
    if String.equal c.partner p.party then
      add path "communication with the owning party %s itself" p.party;
    if not (known_partner c.partner) then
      add path "partner %s has no partner link" c.partner;
    let owner = Process.op_owner p kind c in
    if Types.lookup_op p.registry ~party:owner ~op:c.op = None then
      add path "operation %s is not registered for party %s" c.op owner
  in
  (* duplicate block names make the mapping table ambiguous *)
  let seen = Hashtbl.create 16 in
  Activity.iter p.body ~f:(fun path act ->
      (match Activity.block_name act with
      | Some n ->
          if Hashtbl.mem seen n then add path "duplicate block name %s" n
          else Hashtbl.add seen n ()
      | None -> ());
      match act with
      | Activity.Receive c -> check_comm path `Receive c
      | Activity.Reply c -> check_comm path `Reply c
      | Activity.Invoke c -> check_comm path `Invoke c
      | Activity.Pick { on_messages; _ } ->
          if on_messages = [] then add path "pick with no onMessage branch";
          List.iter (fun (c, _) -> check_comm path `Receive c) on_messages;
          let ops = List.map (fun ((c : Activity.comm), _) -> (c.partner, c.op)) on_messages in
          if List.length (List.sort_uniq compare ops) <> List.length ops then
            add path "pick with duplicate trigger messages"
      | Activity.Switch { branches; _ } ->
          if branches = [] then add path "switch with no branch"
      | Activity.Sequence (_, []) -> add path "empty sequence"
      | Activity.Flow (_, []) -> add path "empty flow"
      | Activity.While { cond; _ } ->
          if String.equal cond "" then add path "while without condition"
      | _ -> ());
  List.rev !issues

let is_valid p = check p = []

let pp_issue ppf i =
  Fmt.pf ppf "at %a: %s" (Fmt.list ~sep:(Fmt.any ".") Fmt.int) i.path i.message
