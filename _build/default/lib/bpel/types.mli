(** WSDL-lite vocabulary (Sec. 2 of the paper): operations are
    asynchronous (one input message) or synchronous (input and output —
    two messages on the wire); port types group operations; partner
    links name bilateral interactions. *)

type mode = Async | Sync

val equal_mode : mode -> mode -> bool
val compare_mode : mode -> mode -> int
val pp_mode : Format.formatter -> mode -> unit
val show_mode : mode -> string

type operation = { op_name : string; mode : mode }

val equal_operation : operation -> operation -> bool
val compare_operation : operation -> operation -> int
val pp_operation : Format.formatter -> operation -> unit
val show_operation : operation -> string

val async : string -> operation
val sync : string -> operation

type port_type = { pt_name : string; ops : operation list }

val equal_port_type : port_type -> port_type -> bool
val compare_port_type : port_type -> port_type -> int
val pp_port_type : Format.formatter -> port_type -> unit
val show_port_type : port_type -> string

val find_op : port_type -> string -> operation option

type partner_link = {
  link_name : string;
  partner : string;
  my_role : string;
  partner_role : string;
}

val equal_partner_link : partner_link -> partner_link -> bool
val compare_partner_link : partner_link -> partner_link -> int
val pp_partner_link : Format.formatter -> partner_link -> unit
val show_partner_link : partner_link -> string

type registry = { port_types : (string * port_type) list }
(** Port types offered by each party; a party may appear several
    times. *)

val equal_registry : registry -> registry -> bool
val pp_registry : Format.formatter -> registry -> unit
val show_registry : registry -> string

val registry : (string * port_type) list -> registry
val lookup_op : registry -> party:string -> op:string -> operation option
val op_mode : registry -> party:string -> op:string -> mode option
