(** Structural edit primitives on activities and processes. These are
    the mechanical substrate on which the change operations of Sec. 4
    ({!Chorev_change.Ops}) and the propagation suggestions of Sec. 5
    ({!Chorev_propagate.Suggest}) are built. All functions return
    [Error] on invalid paths instead of raising. *)

open Activity

type error = string

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let update path f (act : t) : (t, error) result =
  match update_at path f act with
  | Some a -> Ok a
  | None -> err "invalid path %s" (show_path path)

(** Replace the node at [path] by [a]. *)
let replace ~path ~by act = update path (fun _ -> by) act

(** Insert [a] into the sequence at [path] at position [pos] (clamped).
    Fails if the node at [path] is not a sequence. *)
let insert_in_sequence ~path ~pos a act =
  match find_at path act with
  | Some (Sequence (n, body)) ->
      let pos = max 0 (min pos (List.length body)) in
      let rec put i = function
        | rest when i = pos -> a :: rest
        | [] -> [ a ]
        | x :: tl -> x :: put (i + 1) tl
      in
      update path (fun _ -> Sequence (n, put 0 body)) act
  | Some other -> err "node at path is a %s, not a sequence" (kind other)
  | None -> err "invalid path %s" (show_path path)

(** Delete the child at index [i] of the sequence or flow at [path]. *)
let delete_child ~path ~index act =
  match find_at path act with
  | Some (Sequence (n, body)) when index >= 0 && index < List.length body ->
      update path (fun _ -> Sequence (n, List.filteri (fun j _ -> j <> index) body)) act
  | Some (Flow (n, body)) when index >= 0 && index < List.length body ->
      update path (fun _ -> Flow (n, List.filteri (fun j _ -> j <> index) body)) act
  | Some other -> err "cannot delete child %d of %s" index (kind other)
  | None -> err "invalid path %s" (show_path path)

(** Add a branch to the switch at [path]. *)
let add_switch_branch ~path ~branch:b act =
  match find_at path act with
  | Some (Switch { name; branches }) ->
      update path (fun _ -> Switch { name; branches = branches @ [ b ] }) act
  | Some other -> err "node at path is a %s, not a switch" (kind other)
  | None -> err "invalid path %s" (show_path path)

(** Add an onMessage arm to the pick at [path]. *)
let add_pick_arm ~path ~arm act =
  match find_at path act with
  | Some (Pick { name; on_messages }) ->
      update path (fun _ -> Pick { name; on_messages = on_messages @ [ arm ] }) act
  | Some other -> err "node at path is a %s, not a pick" (kind other)
  | None -> err "invalid path %s" (show_path path)

(** Turn the receive at [path] into a pick whose first arm is the
    original receive trigger with continuation [Empty], adding [arms].
    This is the adaptation of the paper's Fig. 14, where a [receive
    delivery] becomes a [pick] over [delivery] and [cancel]. When the
    receive sits inside a sequence, the rest of the sequence stays
    *after* the pick (the pick only captures the trigger). *)
let receive_to_pick ~path ~name ~arms act =
  match find_at path act with
  | Some (Receive c) ->
      update path (fun _ -> Pick { name; on_messages = (c, Empty) :: arms }) act
  | Some other -> err "node at path is a %s, not a receive" (kind other)
  | None -> err "invalid path %s" (show_path path)

(** Replace the while at [path] by its unrolled body under a switch:
    either skip (otherwise → empty) or perform the body once followed by
    [suffix]. This realizes the paper's subtractive adaptation (Fig. 18)
    where unlimited parcel tracking becomes at most one iteration. *)
let unroll_while_once ?(suffix = Empty) ~path ~switch_name act =
  match find_at path act with
  | Some (While { name = _; cond = _; body }) ->
      let once =
        match suffix with
        | Empty -> body
        | s -> Sequence ("unrolled once", [ body; s ])
      in
      update path
        (fun _ ->
          Switch
            {
              name = switch_name;
              branches =
                [
                  { cond = "once"; body = once };
                  { cond = "otherwise"; body = suffix };
                ];
            })
        act
  | Some other -> err "node at path is a %s, not a while" (kind other)
  | None -> err "invalid path %s" (show_path path)

(** Remove the while at [path], splicing its body in place (the loop
    executes exactly once). *)
let remove_while ~path act =
  match find_at path act with
  | Some (While { body; _ }) -> update path (fun _ -> body) act
  | Some other -> err "node at path is a %s, not a while" (kind other)
  | None -> err "invalid path %s" (show_path path)

(* Process-level wrappers. *)

let on_process f (p : Process.t) : (Process.t, error) result =
  Result.map (Process.with_body p) (f (Process.body p))

(** Find the first node satisfying [pred] (depth-first preorder). *)
let find_first ~pred act =
  List.find_opt (fun (_, a) -> pred a) (all_nodes act)

(** Find the path of the first structured block whose block name equals
    [name]. *)
let find_block ~name act =
  List.find_map
    (fun (p, a) ->
      match block_name a with
      | Some n when String.equal n name -> Some p
      | _ -> None)
    (all_nodes act)
