(** WSDL-lite vocabulary: operations, port types and partner links.

    The paper (Sec. 2) describes partners exchanging messages by
    invoking WSDL operations grouped in port types; an operation with
    only an input message is asynchronous, one with input and output is
    synchronous (two messages on the wire). Partner links associate a
    partner name with a bilateral interaction. *)

type mode = Async | Sync [@@deriving eq, ord, show]

type operation = { op_name : string; mode : mode } [@@deriving eq, ord, show]

let async name = { op_name = name; mode = Async }
let sync name = { op_name = name; mode = Sync }

type port_type = { pt_name : string; ops : operation list }
[@@deriving eq, ord, show]

let find_op pt name = List.find_opt (fun o -> String.equal o.op_name name) pt.ops

type partner_link = {
  link_name : string;
  partner : string;  (** the party on the other end *)
  my_role : string;
  partner_role : string;
}
[@@deriving eq, ord, show]

(** Registry of the operations a process may use, with the port types
    offered by each party. *)
type registry = { port_types : (string * port_type) list }
[@@deriving eq, show]

let registry port_types = { port_types }

let lookup_op registry ~party ~op =
  List.find_map
    (fun (p, pt) ->
      if String.equal p party then find_op pt op else None)
    registry.port_types

let op_mode registry ~party ~op =
  Option.map (fun o -> o.mode) (lookup_op registry ~party ~op)
