(** A private process: the party owning it, its partner links, the
    operation registry it communicates against, and the root activity.
    Corresponds to a BPEL [<process>] document plus its WSDL imports. *)

type t = {
  name : string;
  party : string;  (** the party executing this process *)
  links : Types.partner_link list;
  registry : Types.registry;
  body : Activity.t;
}

let make ~name ~party ?(links = []) ~registry body =
  { name; party; links; registry; body }

let party p = p.party
let name p = p.name
let body p = p.body
let registry p = p.registry
let links p = p.links

let with_body p body = { p with body }
let with_name p name = { p with name }

(** Parties this process communicates with. *)
let partners p =
  Activity.communications p.body
  |> List.map (fun (_, _, c) -> c.Activity.partner)
  |> List.sort_uniq String.compare

(** Operation mode for a communication of this process; [Async] when the
    registry has no entry (permissive default, flagged by {!Validate}).
    A received (or replied) operation belongs to the owning party's port
    type; an invoked operation to the partner's. *)
let op_owner p kind (c : Activity.comm) =
  match kind with `Invoke -> c.Activity.partner | `Receive | `Reply -> p.party

let mode p kind (c : Activity.comm) =
  Option.value ~default:Types.Async
    (Types.op_mode p.registry ~party:(op_owner p kind c) ~op:c.op)

(** Messages (labels) this communication activity exchanges, in wire
    order, given the owning process. A receive of a synchronous
    operation produces request (partner→me) then response (me→partner);
    an invoke of a synchronous operation the converse pair. *)
let labels_of_comm p kind (c : Activity.comm) :
    Chorev_afsa.Label.t list =
  let me = p.party and other = c.Activity.partner in
  let l ~from ~to_ = Chorev_afsa.Label.make ~sender:from ~receiver:to_ c.op in
  match (kind, mode p kind c) with
  | `Receive, Types.Async -> [ l ~from:other ~to_:me ]
  | `Receive, Types.Sync -> [ l ~from:other ~to_:me; l ~from:me ~to_:other ]
  | `Invoke, Types.Async -> [ l ~from:me ~to_:other ]
  | `Invoke, Types.Sync -> [ l ~from:me ~to_:other; l ~from:other ~to_:me ]
  | `Reply, _ -> [ l ~from:me ~to_:other ]

(** Alphabet of the process: every label any of its communications can
    put on the wire. *)
let alphabet p =
  Activity.communications p.body
  |> List.concat_map (fun (_, kind, c) ->
         match kind with
         | `Receive -> labels_of_comm p `Receive c
         | `Reply -> labels_of_comm p `Reply c
         | `Invoke -> labels_of_comm p `Invoke c)
  |> List.sort_uniq Chorev_afsa.Label.compare

let size p = Activity.size p.body
