(** Structural edit primitives on activities and processes — the
    mechanical substrate of the change operations (Sec. 4) and the
    propagation suggestions (Sec. 5). All functions return [Error] on
    invalid paths. *)

type error = string

val update :
  Activity.path -> (Activity.t -> Activity.t) -> Activity.t ->
  (Activity.t, error) result

val replace :
  path:Activity.path -> by:Activity.t -> Activity.t ->
  (Activity.t, error) result

val insert_in_sequence :
  path:Activity.path -> pos:int -> Activity.t -> Activity.t ->
  (Activity.t, error) result
(** Insert into the sequence at [path] at [pos] (clamped). *)

val delete_child :
  path:Activity.path -> index:int -> Activity.t ->
  (Activity.t, error) result
(** Delete a child of the sequence or flow at [path]. *)

val add_switch_branch :
  path:Activity.path -> branch:Activity.branch -> Activity.t ->
  (Activity.t, error) result

val add_pick_arm :
  path:Activity.path -> arm:(Activity.comm * Activity.t) -> Activity.t ->
  (Activity.t, error) result

val receive_to_pick :
  path:Activity.path -> name:string ->
  arms:(Activity.comm * Activity.t) list -> Activity.t ->
  (Activity.t, error) result
(** Turn the receive at [path] into a pick whose first arm is the
    original trigger — the paper's Fig. 14 adaptation. *)

val unroll_while_once :
  ?suffix:Activity.t -> path:Activity.path -> switch_name:string ->
  Activity.t -> (Activity.t, error) result
(** Replace the while at [path] by a switch: run the body once followed
    by [suffix], or just [suffix] — the paper's Fig. 18 adaptation. *)

val remove_while :
  path:Activity.path -> Activity.t -> (Activity.t, error) result
(** Splice the loop body in place. *)

val on_process :
  (Activity.t -> (Activity.t, error) result) -> Process.t ->
  (Process.t, error) result

val find_first :
  pred:(Activity.t -> bool) -> Activity.t ->
  (Activity.path * Activity.t) option

val find_block : name:string -> Activity.t -> Activity.path option
(** Path of the first structured block with the given block name. *)
