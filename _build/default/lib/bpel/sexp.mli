(** S-expression persistence for processes and activities;
    [process_to_string]/[process_of_string] round-trip exactly. *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

val sexp_to_string : sexp -> string
val parse_sexp : string -> sexp

val to_sexp : Activity.t -> sexp
val of_sexp : sexp -> Activity.t

val process_to_sexp : Process.t -> sexp
val process_of_sexp : sexp -> Process.t

val process_to_string : Process.t -> string
val process_of_string : string -> (Process.t, string) result
val activity_to_string : Activity.t -> string
val activity_of_string : string -> (Activity.t, string) result
