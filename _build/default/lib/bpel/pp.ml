(** Pretty-printer (indented pseudo-BPEL, used in logs and docs) and a
    simple BPEL 1.1 XML emitter. The XML emitter exists because the
    paper's processes are BPEL documents; our framework never parses
    XML back (DESIGN.md, substitutions). *)

open Activity

let rec pp ppf act =
  match act with
  | Receive c -> Fmt.pf ppf "receive %s/%s" c.partner c.op
  | Reply c -> Fmt.pf ppf "reply %s/%s" c.partner c.op
  | Invoke c -> Fmt.pf ppf "invoke %s/%s" c.partner c.op
  | Assign n -> Fmt.pf ppf "assign %s" n
  | Empty -> Fmt.string ppf "empty"
  | Terminate -> Fmt.string ppf "terminate"
  | Sequence (n, body) ->
      Fmt.pf ppf "@[<v 2>sequence %s {@,%a@]@,}" n
        (Fmt.list ~sep:Fmt.cut pp) body
  | Flow (n, branches) ->
      Fmt.pf ppf "@[<v 2>flow %s {@,%a@]@,}" n
        (Fmt.list ~sep:Fmt.cut pp) branches
  | While { name; cond; body } ->
      Fmt.pf ppf "@[<v 2>while %s [%s] {@,%a@]@,}" name cond pp body
  | Switch { name; branches } ->
      Fmt.pf ppf "@[<v 2>switch %s {@,%a@]@,}" name
        (Fmt.list ~sep:Fmt.cut pp_branch) branches
  | Pick { name; on_messages } ->
      Fmt.pf ppf "@[<v 2>pick %s {@,%a@]@,}" name
        (Fmt.list ~sep:Fmt.cut pp_arm) on_messages
  | Scope (n, body) -> Fmt.pf ppf "@[<v 2>scope %s {@,%a@]@,}" n pp body

and pp_branch ppf { cond; body } =
  Fmt.pf ppf "@[<v 2>case [%s]:@,%a@]" cond pp body

and pp_arm ppf ((c : comm), body) =
  Fmt.pf ppf "@[<v 2>onMessage %s/%s:@,%a@]" c.partner c.op pp body

let pp_process ppf (p : Process.t) =
  Fmt.pf ppf "@[<v 2>process %s (party %s) {@,%a@]@,}" p.name p.party pp
    p.body

let to_string p = Fmt.str "%a" pp_process p

(* -------------------------- XML emission -------------------------- *)

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec xml buf indent act =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ind = String.make (2 * indent) ' ' in
  match act with
  | Receive c ->
      pf "%s<receive partnerLink=\"%s\" operation=\"%s\"/>\n" ind
        (xml_escape c.partner) (xml_escape c.op)
  | Reply c ->
      pf "%s<reply partnerLink=\"%s\" operation=\"%s\"/>\n" ind
        (xml_escape c.partner) (xml_escape c.op)
  | Invoke c ->
      pf "%s<invoke partnerLink=\"%s\" operation=\"%s\"/>\n" ind
        (xml_escape c.partner) (xml_escape c.op)
  | Assign n -> pf "%s<assign name=\"%s\"/>\n" ind (xml_escape n)
  | Empty -> pf "%s<empty/>\n" ind
  | Terminate -> pf "%s<terminate/>\n" ind
  | Sequence (n, body) ->
      pf "%s<sequence name=\"%s\">\n" ind (xml_escape n);
      List.iter (xml buf (indent + 1)) body;
      pf "%s</sequence>\n" ind
  | Flow (n, branches) ->
      pf "%s<flow name=\"%s\">\n" ind (xml_escape n);
      List.iter (xml buf (indent + 1)) branches;
      pf "%s</flow>\n" ind
  | While { name; cond; body } ->
      pf "%s<while name=\"%s\" condition=\"%s\">\n" ind (xml_escape name)
        (xml_escape cond);
      xml buf (indent + 1) body;
      pf "%s</while>\n" ind
  | Switch { name; branches } ->
      pf "%s<switch name=\"%s\">\n" ind (xml_escape name);
      List.iter
        (fun { cond; body } ->
          if String.equal cond "otherwise" then begin
            pf "%s  <otherwise>\n" ind;
            xml buf (indent + 2) body;
            pf "%s  </otherwise>\n" ind
          end
          else begin
            pf "%s  <case condition=\"%s\">\n" ind (xml_escape cond);
            xml buf (indent + 2) body;
            pf "%s  </case>\n" ind
          end)
        branches;
      pf "%s</switch>\n" ind
  | Pick { name; on_messages } ->
      pf "%s<pick name=\"%s\">\n" ind (xml_escape name);
      List.iter
        (fun ((c : comm), body) ->
          pf "%s  <onMessage partnerLink=\"%s\" operation=\"%s\">\n" ind
            (xml_escape c.partner) (xml_escape c.op);
          xml buf (indent + 2) body;
          pf "%s  </onMessage>\n" ind)
        on_messages;
      pf "%s</pick>\n" ind
  | Scope (n, body) ->
      pf "%s<scope name=\"%s\">\n" ind (xml_escape n);
      xml buf (indent + 1) body;
      pf "%s</scope>\n" ind

let to_xml (p : Process.t) =
  let buf = Buffer.create 1024 in
  Printf.ksprintf (Buffer.add_string buf)
    "<process name=\"%s\" xmlns=\"http://schemas.xmlsoap.org/ws/2003/03/business-process/\">\n"
    (xml_escape p.name);
  List.iter
    (fun (l : Types.partner_link) ->
      Printf.ksprintf (Buffer.add_string buf)
        "  <partnerLink name=\"%s\" partner=\"%s\" myRole=\"%s\" partnerRole=\"%s\"/>\n"
        (xml_escape l.link_name) (xml_escape l.partner) (xml_escape l.my_role)
        (xml_escape l.partner_role))
    p.links;
  xml buf 1 p.body;
  Buffer.add_string buf "</process>\n";
  Buffer.contents buf
