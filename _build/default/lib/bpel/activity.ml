(** Block-structured process activities, after the BPEL 1.1 constructs
    the paper uses (Sec. 2): communication activities (receive, reply,
    invoke), basic activities (assign, empty, terminate), and structured
    activities (sequence, flow, while, switch, pick, scope).

    Every structured activity carries a name; names form the block
    identifiers of the mapping table (Table 1), e.g.
    ["While:tracking"]. Activities are addressed by positional paths
    (child index lists) for structural edits. *)

(** A communication endpoint: the partner party and the operation name.
    Whether the operation is synchronous is decided by the registry. *)
type comm = { partner : string; op : string } [@@deriving eq, ord, show]

type t =
  | Receive of comm
  | Reply of comm
  | Invoke of comm
  | Assign of string  (** named data-flow step; no message exchanged *)
  | Empty
  | Terminate
  | Sequence of string * t list
  | Flow of string * t list
  | While of { name : string; cond : string; body : t }
  | Switch of { name : string; branches : branch list }
  | Pick of { name : string; on_messages : (comm * t) list }
  | Scope of string * t

and branch = { cond : string; body : t } [@@deriving eq, ord, show]

let receive ~partner ~op = Receive { partner; op }
let reply ~partner ~op = Reply { partner; op }
let invoke ~partner ~op = Invoke { partner; op }
let seq name body = Sequence (name, body)
let flow name branches = Flow (name, branches)
let while_ name ~cond body = While { name; cond; body }
let switch name branches = Switch { name; branches }
let branch ~cond body = { cond; body }
let otherwise body = { cond = "otherwise"; body }
let pick name on_messages = Pick { name; on_messages }
let on_message ~partner ~op body = ({ partner; op }, body)
let scope name body = Scope (name, body)

(** The block name of a structured activity (mapping-table vocabulary). *)
let block_name = function
  | Sequence (n, _) -> Some ("Sequence:" ^ n)
  | Flow (n, _) -> Some ("Flow:" ^ n)
  | While { name; _ } -> Some ("While:" ^ name)
  | Switch { name; _ } -> Some ("Switch:" ^ name)
  | Pick { name; _ } -> Some ("Pick:" ^ name)
  | Scope (n, _) -> Some ("Scope:" ^ n)
  | Receive _ | Reply _ | Invoke _ | Assign _ | Empty | Terminate -> None

let kind = function
  | Receive _ -> "receive"
  | Reply _ -> "reply"
  | Invoke _ -> "invoke"
  | Assign _ -> "assign"
  | Empty -> "empty"
  | Terminate -> "terminate"
  | Sequence _ -> "sequence"
  | Flow _ -> "flow"
  | While _ -> "while"
  | Switch _ -> "switch"
  | Pick _ -> "pick"
  | Scope _ -> "scope"

(* ------------------------------------------------------------------ *)
(* Children and positional paths                                       *)
(* ------------------------------------------------------------------ *)

(** Direct children, in order. Switch branches and pick arms count as
    one child each (their bodies). *)
let children = function
  | Receive _ | Reply _ | Invoke _ | Assign _ | Empty | Terminate -> []
  | Sequence (_, body) -> body
  | Flow (_, branches) -> branches
  | While { body; _ } -> [ body ]
  | Switch { branches; _ } -> List.map (fun b -> b.body) branches
  | Pick { on_messages; _ } -> List.map snd on_messages
  | Scope (_, body) -> [ body ]

(** Rebuild an activity with new children (same count required). *)
let with_children act kids =
  let expect n =
    if List.length kids <> n then
      invalid_arg
        (Printf.sprintf "Activity.with_children: %s expects %d children, got %d"
           (kind act) n (List.length kids))
  in
  match act with
  | Receive _ | Reply _ | Invoke _ | Assign _ | Empty | Terminate ->
      expect 0;
      act
  | Sequence (n, _) -> Sequence (n, kids)
  | Flow (n, _) -> Flow (n, kids)
  | While w ->
      expect 1;
      While { w with body = List.hd kids }
  | Switch { name; branches } ->
      expect (List.length branches);
      Switch
        { name; branches = List.map2 (fun b k -> { b with body = k }) branches kids }
  | Pick { name; on_messages } ->
      expect (List.length on_messages);
      Pick
        {
          name;
          on_messages = List.map2 (fun (m, _) k -> (m, k)) on_messages kids;
        }
  | Scope (n, _) ->
      expect 1;
      Scope (n, List.hd kids)

(** A positional path: child indices from the root. *)
type path = int list [@@deriving eq, ord, show]

let rec find_at path act =
  match path with
  | [] -> Some act
  | i :: rest -> (
      match List.nth_opt (children act) i with
      | None -> None
      | Some c -> find_at rest c)

(** Replace the sub-activity at [path] by [f sub]; [None] if the path is
    invalid. *)
let rec update_at path f act =
  match path with
  | [] -> Some (f act)
  | i :: rest ->
      let kids = children act in
      if i < 0 || i >= List.length kids then None
      else
        let rec go j = function
          | [] -> None
          | k :: tl ->
              if j = i then
                Option.map (fun k' -> k' :: tl) (update_at rest f k)
              else Option.map (fun tl' -> k :: tl') (go (j + 1) tl)
        in
        Option.map (with_children act) (go 0 kids)

(** Depth-first preorder fold over (path, activity). *)
let fold ~f init act =
  let rec go acc path act =
    let acc = f acc (List.rev path) act in
    List.fold_left
      (fun (i, acc) c -> (i + 1, go acc (i :: path) c))
      (0, acc) (children act)
    |> snd
  in
  go init [] act

(** All (path, activity) pairs in depth-first preorder. *)
let all_nodes act = List.rev (fold ~f:(fun acc p a -> (p, a) :: acc) [] act)

let iter ~f act = fold ~f:(fun () p a -> f p a) () act

(** Number of activity nodes. *)
let size act = fold ~f:(fun n _ _ -> n + 1) 0 act

(** All communication activities with their direction-relevant data:
    [(path, kind, comm)] where kind ∈ {[`Receive]; [`Reply]; [`Invoke]}
    plus pick arms as receives of their trigger message. *)
let communications act =
  List.rev
    (fold
       ~f:(fun acc path a ->
         match a with
         | Receive c -> (path, `Receive, c) :: acc
         | Reply c -> (path, `Reply, c) :: acc
         | Invoke c -> (path, `Invoke, c) :: acc
         | Pick { on_messages; _ } ->
             List.fold_left
               (fun acc (c, _) -> (path, `Receive, c) :: acc)
               acc on_messages
         | _ -> acc)
       [] act)

(** Named-block path of an activity position: the chain of block names
    of the structured ancestors (and the node itself when structured),
    as the mapping table presents it. *)
let named_path root path =
  let rec go acc act = function
    | [] ->
        let acc =
          match block_name act with Some n -> n :: acc | None -> acc
        in
        List.rev acc
    | i :: rest -> (
        let acc =
          match block_name act with Some n -> n :: acc | None -> acc
        in
        match List.nth_opt (children act) i with
        | None -> List.rev acc
        | Some c -> go acc c rest)
  in
  go [] root path
