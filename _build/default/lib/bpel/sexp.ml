(** S-expression persistence for private processes.

    A minimal self-contained s-expression reader/printer (atoms are
    quoted when they contain whitespace or parentheses) plus encoders
    and decoders for {!Activity.t}, {!Types.registry} and
    {!Process.t}. [Process.t ⇄ string] round-trips exactly. *)

type sexp = Atom of string | List of sexp list

(* ------------------------------ printing --------------------------- *)

let needs_quotes s =
  s = ""
  || String.exists (fun c -> List.mem c [ ' '; '\t'; '\n'; '('; ')'; '"' ]) s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec print_sexp buf = function
  | Atom s -> Buffer.add_string buf (if needs_quotes s then quote s else s)
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          print_sexp buf item)
        items;
      Buffer.add_char buf ')'

let sexp_to_string s =
  let buf = Buffer.create 256 in
  print_sexp buf s;
  Buffer.contents buf

(* ------------------------------ parsing ---------------------------- *)

exception Parse_error of string

let parse_sexp (s : string) : sexp =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let read_quoted () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some c -> Buffer.add_char buf c
          | None -> raise (Parse_error "dangling escape"));
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some c when not (List.mem c [ ' '; '\t'; '\n'; '\r'; '('; ')'; '"' ])
        ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    String.sub s start (!pos - start)
  in
  let rec read () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ')' -> advance ()
          | None -> raise (Parse_error "unterminated list")
          | _ ->
              items := read () :: !items;
              loop ()
        in
        loop ();
        List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' -> Atom (read_quoted ())
    | Some _ -> Atom (read_atom ())
  in
  let result = read () in
  skip_ws ();
  if !pos <> n then raise (Parse_error "trailing input");
  result

(* --------------------------- activity codec ------------------------ *)

open Activity

let comm_to_sexp (c : comm) = List [ Atom c.partner; Atom c.op ]

let comm_of_sexp = function
  | List [ Atom partner; Atom op ] -> { partner; op }
  | _ -> raise (Parse_error "bad comm")

let rec to_sexp (a : t) : sexp =
  match a with
  | Receive c -> List [ Atom "receive"; comm_to_sexp c ]
  | Reply c -> List [ Atom "reply"; comm_to_sexp c ]
  | Invoke c -> List [ Atom "invoke"; comm_to_sexp c ]
  | Assign n -> List [ Atom "assign"; Atom n ]
  | Empty -> Atom "empty"
  | Terminate -> Atom "terminate"
  | Sequence (n, body) ->
      List (Atom "sequence" :: Atom n :: List.map to_sexp body)
  | Flow (n, body) -> List (Atom "flow" :: Atom n :: List.map to_sexp body)
  | While { name; cond; body } ->
      List [ Atom "while"; Atom name; Atom cond; to_sexp body ]
  | Switch { name; branches } ->
      List
        (Atom "switch" :: Atom name
        :: List.map
             (fun (b : branch) -> List [ Atom b.cond; to_sexp b.body ])
             branches)
  | Pick { name; on_messages } ->
      List
        (Atom "pick" :: Atom name
        :: List.map
             (fun (c, body) -> List [ comm_to_sexp c; to_sexp body ])
             on_messages)
  | Scope (n, body) -> List [ Atom "scope"; Atom n; to_sexp body ]

let rec of_sexp (s : sexp) : t =
  match s with
  | Atom "empty" -> Empty
  | Atom "terminate" -> Terminate
  | List [ Atom "receive"; c ] -> Receive (comm_of_sexp c)
  | List [ Atom "reply"; c ] -> Reply (comm_of_sexp c)
  | List [ Atom "invoke"; c ] -> Invoke (comm_of_sexp c)
  | List [ Atom "assign"; Atom n ] -> Assign n
  | List (Atom "sequence" :: Atom n :: body) ->
      Sequence (n, List.map of_sexp body)
  | List (Atom "flow" :: Atom n :: body) -> Flow (n, List.map of_sexp body)
  | List [ Atom "while"; Atom name; Atom cond; body ] ->
      While { name; cond; body = of_sexp body }
  | List (Atom "switch" :: Atom name :: branches) ->
      Switch
        {
          name;
          branches =
            List.map
              (function
                | List [ Atom cond; body ] -> { cond; body = of_sexp body }
                | _ -> raise (Parse_error "bad switch branch"))
              branches;
        }
  | List (Atom "pick" :: Atom name :: arms) ->
      Pick
        {
          name;
          on_messages =
            List.map
              (function
                | List [ c; body ] -> (comm_of_sexp c, of_sexp body)
                | _ -> raise (Parse_error "bad pick arm"))
              arms;
        }
  | List [ Atom "scope"; Atom n; body ] -> Scope (n, of_sexp body)
  | _ -> raise (Parse_error "bad activity")

(* --------------------------- process codec ------------------------- *)

let registry_to_sexp (r : Types.registry) =
  List
    (Atom "registry"
    :: List.map
         (fun (party, (pt : Types.port_type)) ->
           List
             (Atom party :: Atom pt.pt_name
             :: List.map
                  (fun (o : Types.operation) ->
                    List
                      [
                        Atom o.op_name;
                        Atom
                          (match o.mode with
                          | Types.Async -> "async"
                          | Types.Sync -> "sync");
                      ])
                  pt.ops))
         r.Types.port_types)

let registry_of_sexp = function
  | List (Atom "registry" :: entries) ->
      Types.registry
        (List.map
           (function
             | List (Atom party :: Atom pt_name :: ops) ->
                 ( party,
                   {
                     Types.pt_name;
                     ops =
                       List.map
                         (function
                           | List [ Atom op_name; Atom "async" ] ->
                               { Types.op_name; mode = Types.Async }
                           | List [ Atom op_name; Atom "sync" ] ->
                               { Types.op_name; mode = Types.Sync }
                           | _ -> raise (Parse_error "bad operation"))
                         ops;
                   } )
             | _ -> raise (Parse_error "bad registry entry"))
           entries)
  | _ -> raise (Parse_error "bad registry")

let link_to_sexp (l : Types.partner_link) =
  List
    [ Atom l.link_name; Atom l.partner; Atom l.my_role; Atom l.partner_role ]

let link_of_sexp = function
  | List [ Atom link_name; Atom partner; Atom my_role; Atom partner_role ] ->
      { Types.link_name; partner; my_role; partner_role }
  | _ -> raise (Parse_error "bad partner link")

let process_to_sexp (p : Process.t) =
  List
    [
      Atom "process";
      Atom (Process.name p);
      Atom (Process.party p);
      List (Atom "links" :: List.map link_to_sexp (Process.links p));
      registry_to_sexp (Process.registry p);
      to_sexp (Process.body p);
    ]

let process_of_sexp = function
  | List
      [
        Atom "process"; Atom name; Atom party; List (Atom "links" :: links);
        registry; body;
      ] ->
      Process.make ~name ~party
        ~links:(List.map link_of_sexp links)
        ~registry:(registry_of_sexp registry)
        (of_sexp body)
  | _ -> raise (Parse_error "bad process")

(* ------------------------------ strings ---------------------------- *)

let process_to_string p = sexp_to_string (process_to_sexp p)

let process_of_string s : (Process.t, string) result =
  try Ok (process_of_sexp (parse_sexp s)) with
  | Parse_error e -> Error e

let activity_to_string a = sexp_to_string (to_sexp a)

let activity_of_string s : (t, string) result =
  try Ok (of_sexp (parse_sexp s)) with Parse_error e -> Error e
