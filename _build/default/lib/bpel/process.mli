(** A private process: owning party, partner links, operation registry
    and root activity — a BPEL [<process>] document with its WSDL
    imports. *)

type t = {
  name : string;
  party : string;
  links : Types.partner_link list;
  registry : Types.registry;
  body : Activity.t;
}

val make :
  name:string ->
  party:string ->
  ?links:Types.partner_link list ->
  registry:Types.registry ->
  Activity.t ->
  t

val party : t -> string
val name : t -> string
val body : t -> Activity.t
val registry : t -> Types.registry
val links : t -> Types.partner_link list
val with_body : t -> Activity.t -> t
val with_name : t -> string -> t

val partners : t -> string list
(** Parties this process communicates with. *)

val op_owner :
  t -> [ `Receive | `Reply | `Invoke ] -> Activity.comm -> string
(** Received/replied operations belong to the owning party's port
    type; invoked ones to the partner's. *)

val mode :
  t -> [ `Receive | `Reply | `Invoke ] -> Activity.comm -> Types.mode
(** [Async] when the registry has no entry (flagged by
    {!Validate}). *)

val labels_of_comm :
  t ->
  [ `Receive | `Reply | `Invoke ] ->
  Activity.comm ->
  Chorev_afsa.Label.t list
(** Messages the communication puts on the wire, in order; synchronous
    operations produce request then response. *)

val alphabet : t -> Chorev_afsa.Label.t list
val size : t -> int
