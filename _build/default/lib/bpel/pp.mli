(** Pretty-printer (indented pseudo-BPEL) and BPEL 1.1 XML emitter. *)

val pp : Format.formatter -> Activity.t -> unit
val pp_process : Format.formatter -> Process.t -> unit
val to_string : Process.t -> string
val to_xml : Process.t -> string
val xml_escape : string -> string
