(** Syntax of the logical formulas used in aFSA state annotations.

    This implements Definition 1 of the paper: the constants [true] and
    [false] are formulas, variables over a finite set of messages are
    formulas, and formulas are closed under negation, conjunction and
    disjunction. Variables are message identifiers (we use the full label
    string ["B#A#orderOp"]; the paper's figures abbreviate to the bare
    operation name). *)

type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
[@@deriving eq, ord, show]

(* Smart constructors perform only local, constant-level rewrites so that
   formula construction never explodes; full simplification lives in
   {!Simplify}. *)

let tru = True
let fls = False
let var v = Var v

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let and_ a b =
  match (a, b) with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | a, b -> And (a, b)

let or_ a b =
  match (a, b) with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | a, b -> Or (a, b)

(** [conj fs] is the conjunction of all formulas in [fs]; [True] if empty. *)
let conj fs = List.fold_left and_ True fs

(** [disj fs] is the disjunction of all formulas in [fs]; [False] if empty. *)
let disj fs = List.fold_left or_ False fs

(** Set of variable names. *)
module Vars = Set.Make (String)

let rec vars = function
  | True | False -> Vars.empty
  | Var v -> Vars.singleton v
  | Not f -> vars f
  | And (a, b) | Or (a, b) -> Vars.union (vars a) (vars b)

let vars_list f = Vars.elements (vars f)

(** Number of AST nodes. *)
let rec size = function
  | True | False | Var _ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) -> 1 + size a + size b

(** [map_vars f phi] replaces every variable [v] by the formula [f v]. *)
let rec map_vars f = function
  | True -> True
  | False -> False
  | Var v -> f v
  | Not g -> not_ (map_vars f g)
  | And (a, b) -> and_ (map_vars f a) (map_vars f b)
  | Or (a, b) -> or_ (map_vars f a) (map_vars f b)

(** [rename f phi] renames every variable through [f]. *)
let rename f phi = map_vars (fun v -> Var (f v)) phi

(** A formula is positive when it contains no negation. The annotations
    the paper uses (conjunctions of mandatory messages) are all positive;
    the emptiness fixpoint is exact only on positive formulas. *)
let rec is_positive = function
  | True | False | Var _ -> true
  | Not _ -> false
  | And (a, b) | Or (a, b) -> is_positive a && is_positive b

let rec fold ~tru ~fls ~var ~nt ~cj ~dj = function
  | True -> tru
  | False -> fls
  | Var v -> var v
  | Not f -> nt (fold ~tru ~fls ~var ~nt ~cj ~dj f)
  | And (a, b) ->
      cj (fold ~tru ~fls ~var ~nt ~cj ~dj a) (fold ~tru ~fls ~var ~nt ~cj ~dj b)
  | Or (a, b) ->
      dj (fold ~tru ~fls ~var ~nt ~cj ~dj a) (fold ~tru ~fls ~var ~nt ~cj ~dj b)
