(** Parser for the textual syntax of {!Pp}: [AND] binds tighter than
    [OR]; [NOT] tighter than both; variables are any non-keyword word
    (labels like ["B#A#orderOp"] are single variables). *)

val of_string : string -> (Syntax.t, string) result
val of_string_exn : string -> Syntax.t
