(** Satisfiability, tautology and equivalence. Annotation formulas are
    small; decisions go through DNF with a truth-table fallback. *)

val satisfiable : Syntax.t -> bool
val unsat : Syntax.t -> bool
val tautology : Syntax.t -> bool

val equivalent : Syntax.t -> Syntax.t -> bool
(** Logical equivalence. *)

val implies : Syntax.t -> Syntax.t -> bool

val model : Syntax.t -> (string * bool) list option
(** A satisfying assignment over the formula's own variables, if any. *)
