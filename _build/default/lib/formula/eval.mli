(** Evaluation and substitution of annotation formulas. *)

val eval : assign:(string -> bool) -> Syntax.t -> bool
(** Evaluate under a total assignment. *)

val subst : bind:(string -> bool option) -> Syntax.t -> Syntax.t
(** Replace variables the partial assignment determines by constants;
    constant-fold the result. *)

val restrict_to :
  keep:(string -> bool) -> default:bool -> Syntax.t -> Syntax.t
(** Substitute every variable not satisfying [keep] by [default]. View
    generation uses [default:true]: hidden messages are internal
    obligations assumed fulfilled (Sec. 3.4 of the paper). *)

val eval_partial : bind:(string -> bool option) -> Syntax.t -> bool option
(** [Some b] when the partial assignment determines the value. *)
