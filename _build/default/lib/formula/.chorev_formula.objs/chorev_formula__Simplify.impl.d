lib/formula/simplify.pp.ml: List Syntax
