lib/formula/syntax.pp.mli: Format Set
