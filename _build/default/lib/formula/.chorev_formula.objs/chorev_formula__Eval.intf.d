lib/formula/eval.pp.mli: Syntax
