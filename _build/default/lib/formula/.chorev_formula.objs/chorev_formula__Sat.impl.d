lib/formula/sat.pp.ml: Eval List Simplify String Syntax
