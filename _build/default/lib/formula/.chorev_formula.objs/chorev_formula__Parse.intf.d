lib/formula/parse.pp.mli: Syntax
