lib/formula/simplify.pp.mli: Syntax
