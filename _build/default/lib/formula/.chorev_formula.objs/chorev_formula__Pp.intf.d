lib/formula/pp.pp.mli: Format Syntax
