lib/formula/syntax.pp.ml: List Ppx_deriving_runtime Set String
