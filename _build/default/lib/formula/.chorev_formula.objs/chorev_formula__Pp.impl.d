lib/formula/pp.pp.ml: Fmt Syntax
