lib/formula/parse.pp.ml: List String Syntax
