lib/formula/eval.pp.ml: Syntax
