lib/formula/sat.pp.mli: Syntax
