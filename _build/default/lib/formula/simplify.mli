(** Simplification and normal forms of annotation formulas. *)

val nnf : Syntax.t -> Syntax.t
(** Negation normal form. *)

val simplify : Syntax.t -> Syntax.t
(** Stable simplified form: NNF with flattened, sorted, duplicate-free
    conjunctions/disjunctions, constant folding, complement
    annihilation, absorption. Idempotent; used as the annotation key by
    minimization. *)

exception Too_large

type literal = [ `Pos of string | `Neg of string ]

val dnf : ?max_clauses:int -> Syntax.t -> literal list list
(** Disjunctive normal form as clauses of literals. Raises {!Too_large}
    beyond [max_clauses] (default 4096). *)

val clause_consistent : literal list -> bool
(** No variable occurring both positively and negatively. *)
