(** Evaluation and substitution of formulas. *)

open Syntax

(** [eval ~assign phi] evaluates [phi] under the total assignment
    [assign]. *)
let rec eval ~assign = function
  | True -> true
  | False -> false
  | Var v -> assign v
  | Not f -> not (eval ~assign f)
  | And (a, b) -> eval ~assign a && eval ~assign b
  | Or (a, b) -> eval ~assign a || eval ~assign b

(** [subst ~bind phi] replaces each variable [v] for which
    [bind v = Some b] by the constant [b]; other variables remain. The
    result is partially constant-folded via the smart constructors. *)
let subst ~bind phi =
  map_vars
    (fun v ->
      match bind v with
      | Some true -> True
      | Some false -> False
      | None -> Var v)
    phi

(** [restrict_to ~keep ~default phi] substitutes every variable not
    satisfying [keep] by the constant [default]. Used by view generation:
    messages invisible to a partner are internal obligations and are
    assumed fulfilled ([default = true]). *)
let restrict_to ~keep ~default phi =
  subst ~bind:(fun v -> if keep v then None else Some default) phi

(** [eval_partial ~bind phi] evaluates under a partial assignment,
    returning [Some b] when the value is determined. *)
let eval_partial ~bind phi =
  match subst ~bind phi with True -> Some true | False -> Some false | _ -> None
