(** Printing in the paper's style: infix [AND] / [OR] / [NOT],
    parenthesized by precedence. Parsed back by {!Parse}. *)

val pp : Format.formatter -> Syntax.t -> unit
val to_string : Syntax.t -> string

val pp_abbrev : (string -> string) -> Format.formatter -> Syntax.t -> unit
(** Print with variables renamed through an abbreviation function (the
    paper's figures show only the operation part of a label). *)
