(** Printing of formulas in the paper's style: infix [AND] / [OR] / [NOT],
    parenthesized by precedence (NOT > AND > OR). *)

open Syntax

let rec pp_prec prec ppf f =
  match f with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Var v -> Fmt.string ppf v
  | Not g ->
      if prec > 3 then Fmt.pf ppf "(NOT %a)" (pp_prec 3) g
      else Fmt.pf ppf "NOT %a" (pp_prec 3) g
  | And (a, b) ->
      if prec > 2 then Fmt.pf ppf "(%a AND %a)" (pp_prec 2) a (pp_prec 2) b
      else Fmt.pf ppf "%a AND %a" (pp_prec 2) a (pp_prec 2) b
  | Or (a, b) ->
      if prec > 1 then Fmt.pf ppf "(%a OR %a)" (pp_prec 1) a (pp_prec 1) b
      else Fmt.pf ppf "%a OR %a" (pp_prec 1) a (pp_prec 1) b

let pp ppf f = pp_prec 0 ppf f
let to_string f = Fmt.str "%a" pp f

(** Print with variables abbreviated through [abbrev] (the paper's
    figures print only the operation part of a label). *)
let pp_abbrev abbrev ppf f = pp ppf (rename abbrev f)
