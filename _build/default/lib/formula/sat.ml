(** Satisfiability, tautology and equivalence of formulas.

    Annotation formulas are small (a handful of message variables), so a
    DNF-based decision procedure is entirely adequate; [satisfiable]
    falls back to truth-table enumeration when DNF explodes. *)

open Syntax

let satisfiable f =
  match Simplify.dnf f with
  | clauses -> List.exists Simplify.clause_consistent clauses
  | exception Simplify.Too_large ->
      (* Truth-table fallback; annotation vocabularies are small. *)
      let vs = vars_list f in
      let n = List.length vs in
      if n > 22 then invalid_arg "Sat.satisfiable: too many variables";
      let rec try_mask mask =
        if mask >= 1 lsl n then false
        else
          let assign v =
            let rec idx i = function
              | [] -> invalid_arg "Sat.satisfiable"
              | w :: tl -> if String.equal v w then i else idx (i + 1) tl
            in
            mask land (1 lsl idx 0 vs) <> 0
          in
          Eval.eval ~assign f || try_mask (mask + 1)
      in
      try_mask 0

let unsat f = not (satisfiable f)
let tautology f = unsat (not_ f)

(** Logical equivalence. *)
let equivalent a b = tautology (or_ (and_ a b) (and_ (not_ a) (not_ b)))

(** [implies a b] iff every model of [a] is a model of [b]. *)
let implies a b = unsat (and_ a (not_ b))

(** A model of [f] over its own variables, if any: list of
    (variable, value). *)
let model f =
  let vs = vars_list f in
  let n = List.length vs in
  if n > 22 then invalid_arg "Sat.model: too many variables";
  let rec try_mask mask =
    if mask >= 1 lsl n then None
    else
      let value i = mask land (1 lsl i) <> 0 in
      let assign v =
        let rec idx i = function
          | [] -> invalid_arg "Sat.model"
          | w :: tl -> if String.equal v w then i else idx (i + 1) tl
        in
        value (idx 0 vs)
      in
      if Eval.eval ~assign f then Some (List.mapi (fun i v -> (v, value i)) vs)
      else try_mask (mask + 1)
  in
  try_mask 0
