(** Parser for the textual formula syntax produced by {!Pp}:

      formula ::= disj
      disj    ::= conj ("OR" conj)*
      conj    ::= atom ("AND" atom)*
      atom    ::= "NOT" atom | "true" | "false" | var | "(" formula ")"

    Variables are message identifiers: any run of characters that is
    not whitespace, a parenthesis, or one of the keywords (labels like
    ["B#A#orderOp"] parse as single variables). Round-trips with
    {!Pp.to_string}. *)

open Syntax

type token = LPAREN | RPAREN | AND | OR | NOT | TRUE | FALSE | VAR of string

let tokenize s : (token list, string) result =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | _ ->
          let j = ref i in
          while
            !j < n
            && not (List.mem s.[!j] [ ' '; '\t'; '\n'; '\r'; '('; ')' ])
          do
            incr j
          done;
          let word = String.sub s i (!j - i) in
          let tok =
            match word with
            | "AND" -> AND
            | "OR" -> OR
            | "NOT" -> NOT
            | "true" -> TRUE
            | "false" -> FALSE
            | v -> VAR v
          in
          go !j (tok :: acc)
  in
  go 0 []

exception Parse_error of string

let parse_tokens tokens =
  let toks = ref tokens in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: tl -> toks := tl in
  let expect t msg =
    match peek () with
    | Some t' when t' = t -> advance ()
    | _ -> raise (Parse_error msg)
  in
  let rec disj () =
    let left = conj () in
    match peek () with
    | Some OR ->
        advance ();
        Or (left, disj ())
    | _ -> left
  and conj () =
    let left = atom () in
    match peek () with
    | Some AND ->
        advance ();
        And (left, conj ())
    | _ -> left
  and atom () =
    match peek () with
    | Some NOT ->
        advance ();
        Not (atom ())
    | Some TRUE ->
        advance ();
        True
    | Some FALSE ->
        advance ();
        False
    | Some (VAR v) ->
        advance ();
        Var v
    | Some LPAREN ->
        advance ();
        let f = disj () in
        expect RPAREN "expected ')'";
        f
    | Some RPAREN -> raise (Parse_error "unexpected ')'")
    | Some AND | Some OR -> raise (Parse_error "unexpected operator")
    | None -> raise (Parse_error "unexpected end of input")
  in
  let f = disj () in
  match !toks with
  | [] -> f
  | _ -> raise (Parse_error "trailing input")

let of_string s : (t, string) result =
  match tokenize s with
  | Error e -> Error e
  | Ok tokens -> (
      try Ok (parse_tokens tokens) with Parse_error e -> Error e)

let of_string_exn s =
  match of_string s with
  | Ok f -> f
  | Error e -> invalid_arg ("Formula.Parse.of_string_exn: " ^ e)
