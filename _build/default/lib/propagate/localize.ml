(** Localization of change effects in the partner's process (Sec. 5.2
    ad 3 / Sec. 5.3 ad 3 of the paper).

    The partner's current public process [B] is traversed in parallel
    with the computed target public process [B'] ("comparable to
    bi-simulation", as the paper puts it). At each reached state pair we
    compare the outgoing labels: a label present in [B'] but not in [B]
    marks an *addition* the private process must start handling; a label
    present in [B] but not in [B'] marks a *removal*. The mapping table
    translates the [B]-state of each divergence into BPEL blocks; the
    first block is the edit anchor ("the required modifications can be
    limited to the first block mentioned"). *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Sym = Chorev_afsa.Sym
module Table = Chorev_mapping.Table

type divergence = {
  state_b : int;  (** state of the partner's current public process *)
  state_new : int;  (** paired state of the computed target process *)
  missing : Label.t list;  (** labels [B'] has here and [B] lacks *)
  removed : Label.t list;  (** labels [B] has here and [B'] lacks *)
  anchors : Table.entry list;  (** mapping-table entries of [state_b] *)
}

let out_labels a q = Afsa.out_symbols a q |> Label.Set.elements

(** All divergences, in BFS order from the start pair — the first one is
    the paper's localization point. Both automata should be ε-free
    (generated publics and difference/union results are). *)
let diverge ~old_public:b ~new_public:b' ~table : divergence list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let queue = Queue.create () in
  let push pr = if not (Hashtbl.mem seen pr) then begin
      Hashtbl.add seen pr ();
      Queue.add pr queue
    end
  in
  push (Afsa.start b, Afsa.start b');
  while not (Queue.is_empty queue) do
    let (qb, qn) = Queue.pop queue in
    let lb = Label.Set.of_list (out_labels b qb) in
    let ln = Label.Set.of_list (out_labels b' qn) in
    let missing = Label.Set.elements (Label.Set.diff ln lb) in
    let removed = Label.Set.elements (Label.Set.diff lb ln) in
    if missing <> [] || removed <> [] then
      out :=
        {
          state_b = qb;
          state_new = qn;
          missing;
          removed;
          anchors = Table.entries table qb;
        }
        :: !out;
    (* advance on shared labels *)
    Label.Set.iter
      (fun l ->
        Afsa.ISet.iter
          (fun tb ->
            Afsa.ISet.iter
              (fun tn -> push (tb, tn))
              (Afsa.step b' qn (Sym.L l)))
          (Afsa.step b qb (Sym.L l)))
      (Label.Set.inter lb ln)
  done;
  List.rev !out

let pp_divergence ppf d =
  Fmt.pf ppf "@[<v>at public state %d (paired with %d):@," d.state_b
    d.state_new;
  if d.missing <> [] then
    Fmt.pf ppf "  new transitions: %a@,"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf l -> Fmt.string ppf (Label.to_string l)))
      d.missing;
  if d.removed <> [] then
    Fmt.pf ppf "  removed transitions: %a@,"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf l -> Fmt.string ppf (Label.to_string l)))
      d.removed;
  Fmt.pf ppf "  blocks: %a@]"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e : Table.entry) ->
         Fmt.string ppf e.block))
    d.anchors
