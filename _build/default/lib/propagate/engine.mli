(** The propagation pipelines of Sec. 5.2 (variant additive) and 5.3
    (variant subtractive), steps 1–5: delta computation, target public
    process, localization, suggestions, optional auto-apply with a
    re-check loop over suggestion subsets. *)

module Afsa = Chorev_afsa.Afsa

type direction = Additive | Subtractive

type outcome = {
  direction : direction;
  view_new : Afsa.t;  (** τ_partner(A′) *)
  delta : Afsa.t;  (** added or removed sequences *)
  target_public : Afsa.t;  (** computed B′ *)
  divergences : Localize.divergence list;
  suggestions : Suggest.t list;
  adapted : Chorev_bpel.Process.t option;
  adapted_public : Afsa.t option;
  consistent_after : bool;
}

val analyze :
  direction:direction ->
  a':Afsa.t ->
  partner_private:Chorev_bpel.Process.t ->
  public_b:Afsa.t ->
  table_b:Chorev_mapping.Table.t ->
  Afsa.t * Afsa.t * Afsa.t * Localize.divergence list * Suggest.t list
(** [(view_new, delta, target, divergences, suggestions)]. *)

val propagate :
  ?auto_apply:bool ->
  direction:direction ->
  a':Afsa.t ->
  partner_private:Chorev_bpel.Process.t ->
  unit ->
  outcome
(** With [auto_apply:false] the outcome carries analysis and
    suggestions only. *)

val direction_of_framework : Chorev_change.Classify.framework -> direction
val pp_outcome : Format.formatter -> outcome -> unit
