lib/propagate/suggest.pp.ml: Activity Chorev_afsa Chorev_bpel Chorev_change Chorev_mapping Fmt List Localize Option Process String
