lib/propagate/engine.pp.mli: Chorev_afsa Chorev_bpel Chorev_change Chorev_mapping Format Localize Suggest
