lib/propagate/localize.pp.mli: Chorev_afsa Chorev_mapping Format
