lib/propagate/engine.pp.ml: Chorev_afsa Chorev_bpel Chorev_change Chorev_mapping Fmt List Localize Option Process Result Suggest
