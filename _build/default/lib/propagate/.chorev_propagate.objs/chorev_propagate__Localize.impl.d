lib/propagate/localize.pp.ml: Chorev_afsa Chorev_mapping Fmt Hashtbl List Queue
