lib/propagate/suggest.pp.mli: Chorev_afsa Chorev_bpel Chorev_change Format Localize
