(** Localization of change effects (Sec. 5.2 ad 3 / 5.3 ad 3): parallel
    traversal of the partner's current public process against the
    computed target, mapping divergent states to BPEL blocks via the
    mapping table. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Table = Chorev_mapping.Table

type divergence = {
  state_b : int;  (** state of the partner's current public process *)
  state_new : int;  (** paired state of the computed target *)
  missing : Label.t list;  (** labels the target has and B lacks *)
  removed : Label.t list;  (** labels B has and the target lacks *)
  anchors : Table.entry list;  (** table entries of [state_b] *)
}

val out_labels : Afsa.t -> int -> Label.t list

val diverge :
  old_public:Afsa.t -> new_public:Afsa.t -> table:Table.t ->
  divergence list
(** BFS order from the start pair — the first divergence is the
    paper's localization point. *)

val pp_divergence : Format.formatter -> divergence -> unit
