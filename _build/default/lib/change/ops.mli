(** Change operations on private processes (Sec. 4): insert/delete/
    replace activities, branch additions, loop removal/unrolling, and
    the shift operations (move/swap) the paper mentions as part of its
    wider framework. A change's additive/subtractive/variant/invariant
    character is derived by {!Classify}, never declared. *)

open Chorev_bpel

type t =
  | Insert_activity of {
      path : Activity.path;
      pos : int;
      act : Activity.t;
    }
  | Delete_activity of { path : Activity.path; index : int }
  | Replace_activity of { path : Activity.path; by : Activity.t }
  | Add_switch_branch of { path : Activity.path; branch : Activity.branch }
  | Add_pick_arm of {
      path : Activity.path;
      arm : Activity.comm * Activity.t;
    }
  | Receive_to_pick of {
      path : Activity.path;
      name : string;
      arms : (Activity.comm * Activity.t) list;
    }
  | Remove_loop of { path : Activity.path }
  | Unroll_loop_once of {
      path : Activity.path;
      switch_name : string;
      suffix : Activity.t;
    }
  | Move_activity of {
      from_path : Activity.path;
      from_index : int;
      to_path : Activity.path;
      to_index : int;
    }
  | Swap_activities of { path : Activity.path; i : int; j : int }
  | Parallelize of { path : Activity.path }
  | Serialize of { path : Activity.path }
  | Wrap_in_loop of { path : Activity.path; name : string; cond : string }
  | Rename_block of { path : Activity.path; name : string }
  | Compound of t list  (** applied in order; fails atomically *)

val pp : Format.formatter -> t -> unit
val pp_path : Format.formatter -> Activity.path -> unit
val to_string : t -> string

val apply : t -> Process.t -> (Process.t, string) result
val apply_exn : t -> Process.t -> Process.t
