lib/change/classify.pp.mli: Chorev_afsa Format
