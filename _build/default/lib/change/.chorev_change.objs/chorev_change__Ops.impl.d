lib/change/ops.pp.ml: Activity Array Chorev_bpel Edit Fmt List Printf Process Result
