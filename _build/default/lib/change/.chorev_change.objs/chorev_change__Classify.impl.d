lib/change/classify.pp.ml: Chorev_afsa Fmt Ppx_deriving_runtime
