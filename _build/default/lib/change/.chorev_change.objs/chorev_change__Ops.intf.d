lib/change/ops.pp.mli: Activity Chorev_bpel Format Process
