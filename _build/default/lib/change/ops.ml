(** Change operations on private processes (Sec. 4 of the paper).

    The paper focuses on structural changes — "the insertion or deletion
    of process activities". We provide the catalogue of basic operations
    its scenarios use (and those its Sec. 4 mentions as part of the
    framework): inserting and deleting activities, adding alternative
    branches, replacing activities, and removing/unrolling loops. A
    change is applied to a private process and yields a new private
    process; its additive/subtractive/variant/invariant character is
    *derived* from the public processes by {!Classify}, never declared. *)

open Chorev_bpel

type t =
  | Insert_activity of {
      path : Activity.path;  (** a sequence *)
      pos : int;
      act : Activity.t;
    }
  | Delete_activity of { path : Activity.path; index : int }
      (** delete child [index] of the sequence/flow at [path] *)
  | Replace_activity of { path : Activity.path; by : Activity.t }
  | Add_switch_branch of { path : Activity.path; branch : Activity.branch }
  | Add_pick_arm of {
      path : Activity.path;
      arm : Activity.comm * Activity.t;
    }
  | Receive_to_pick of {
      path : Activity.path;
      name : string;
      arms : (Activity.comm * Activity.t) list;
    }
  | Remove_loop of { path : Activity.path }
      (** splice the loop body in place (runs exactly once) *)
  | Unroll_loop_once of {
      path : Activity.path;
      switch_name : string;
      suffix : Activity.t;
    }
  | Move_activity of {
      from_path : Activity.path;
      from_index : int;
      to_path : Activity.path;
      to_index : int;
    }
      (** the paper's "shift" operation: move a child of one sequence
          to a position in another (or the same) sequence *)
  | Swap_activities of { path : Activity.path; i : int; j : int }
      (** exchange two children of a sequence *)
  | Parallelize of { path : Activity.path }
      (** turn the sequence at [path] into a flow: its members may now
          interleave *)
  | Serialize of { path : Activity.path }
      (** turn the flow at [path] into a sequence: fix one order *)
  | Wrap_in_loop of { path : Activity.path; name : string; cond : string }
      (** wrap the activity at [path] in a while loop *)
  | Rename_block of { path : Activity.path; name : string }
      (** rename a structured block — publicly invisible, but it moves
          the mapping table's vocabulary *)
  | Compound of t list  (** apply in order; fail atomically *)

let rec pp ppf = function
  | Insert_activity { path; pos; _ } ->
      Fmt.pf ppf "insert activity at %a pos %d" pp_path path pos
  | Delete_activity { path; index } ->
      Fmt.pf ppf "delete child %d at %a" index pp_path path
  | Replace_activity { path; _ } -> Fmt.pf ppf "replace at %a" pp_path path
  | Add_switch_branch { path; _ } ->
      Fmt.pf ppf "add switch branch at %a" pp_path path
  | Add_pick_arm { path; _ } -> Fmt.pf ppf "add pick arm at %a" pp_path path
  | Receive_to_pick { path; _ } ->
      Fmt.pf ppf "turn receive at %a into pick" pp_path path
  | Remove_loop { path } -> Fmt.pf ppf "remove loop at %a" pp_path path
  | Unroll_loop_once { path; _ } ->
      Fmt.pf ppf "unroll loop once at %a" pp_path path
  | Move_activity { from_path; from_index; to_path; to_index } ->
      Fmt.pf ppf "move child %d of %a to position %d of %a" from_index
        pp_path from_path to_index pp_path to_path
  | Swap_activities { path; i; j } ->
      Fmt.pf ppf "swap children %d and %d at %a" i j pp_path path
  | Parallelize { path } -> Fmt.pf ppf "parallelize sequence at %a" pp_path path
  | Serialize { path } -> Fmt.pf ppf "serialize flow at %a" pp_path path
  | Wrap_in_loop { path; _ } -> Fmt.pf ppf "wrap %a in a loop" pp_path path
  | Rename_block { path; name } ->
      Fmt.pf ppf "rename block at %a to %s" pp_path path name
  | Compound ops ->
      Fmt.pf ppf "compound [%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) ops

and pp_path ppf p = Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ".") Fmt.int) p

let to_string op = Fmt.str "%a" pp op

(** Apply a change operation to a private process. *)
let rec apply (op : t) (p : Process.t) : (Process.t, string) result =
  let on = Edit.on_process in
  match op with
  | Insert_activity { path; pos; act } ->
      on (Edit.insert_in_sequence ~path ~pos act) p
  | Delete_activity { path; index } -> on (Edit.delete_child ~path ~index) p
  | Replace_activity { path; by } -> on (Edit.replace ~path ~by) p
  | Add_switch_branch { path; branch } ->
      on (Edit.add_switch_branch ~path ~branch) p
  | Add_pick_arm { path; arm } -> on (Edit.add_pick_arm ~path ~arm) p
  | Receive_to_pick { path; name; arms } ->
      on (Edit.receive_to_pick ~path ~name ~arms) p
  | Remove_loop { path } -> on (Edit.remove_while ~path) p
  | Unroll_loop_once { path; switch_name; suffix } ->
      on (Edit.unroll_while_once ~suffix ~path ~switch_name) p
  | Move_activity { from_path; from_index; to_path; to_index } ->
      on
        (fun body ->
          match Activity.find_at from_path body with
          | Some (Activity.Sequence (_, kids))
            when from_index >= 0 && from_index < List.length kids ->
              let act = List.nth kids from_index in
              Result.bind
                (Edit.delete_child ~path:from_path ~index:from_index body)
                (fun body' ->
                  (* deleting before inserting shifts indices when both
                     ends are the same sequence and the insertion point
                     lies after the removal point *)
                  let to_index =
                    if
                      Activity.equal_path from_path to_path
                      && to_index > from_index
                    then to_index - 1
                    else to_index
                  in
                  Edit.insert_in_sequence ~path:to_path ~pos:to_index act body')
          | Some a ->
              Error
                (Printf.sprintf "cannot move child %d of a %s" from_index
                   (Activity.kind a))
          | None -> Error "invalid source path")
        p
  | Swap_activities { path; i; j } ->
      on
        (fun body ->
          match Activity.find_at path body with
          | Some (Activity.Sequence (n, kids))
            when i >= 0 && j >= 0 && i < List.length kids
                 && j < List.length kids ->
              let arr = Array.of_list kids in
              let tmp = arr.(i) in
              arr.(i) <- arr.(j);
              arr.(j) <- tmp;
              Edit.replace ~path ~by:(Activity.Sequence (n, Array.to_list arr))
                body
          | Some a -> Error ("cannot swap children of a " ^ Activity.kind a)
          | None -> Error "invalid path")
        p
  | Parallelize { path } ->
      on
        (fun body ->
          match Activity.find_at path body with
          | Some (Activity.Sequence (n, kids)) ->
              Edit.replace ~path ~by:(Activity.Flow (n, kids)) body
          | Some a -> Error ("cannot parallelize a " ^ Activity.kind a)
          | None -> Error "invalid path")
        p
  | Serialize { path } ->
      on
        (fun body ->
          match Activity.find_at path body with
          | Some (Activity.Flow (n, kids)) ->
              Edit.replace ~path ~by:(Activity.Sequence (n, kids)) body
          | Some a -> Error ("cannot serialize a " ^ Activity.kind a)
          | None -> Error "invalid path")
        p
  | Wrap_in_loop { path; name; cond } ->
      on
        (fun body ->
          match Activity.find_at path body with
          | Some a ->
              Edit.replace ~path
                ~by:(Activity.While { name; cond; body = a })
                body
          | None -> Error "invalid path")
        p
  | Rename_block { path; name } ->
      on
        (fun body ->
          match Activity.find_at path body with
          | Some (Activity.Sequence (_, kids)) ->
              Edit.replace ~path ~by:(Activity.Sequence (name, kids)) body
          | Some (Activity.Flow (_, kids)) ->
              Edit.replace ~path ~by:(Activity.Flow (name, kids)) body
          | Some (Activity.While w) ->
              Edit.replace ~path ~by:(Activity.While { w with name }) body
          | Some (Activity.Switch s) ->
              Edit.replace ~path ~by:(Activity.Switch { s with name }) body
          | Some (Activity.Pick pk) ->
              Edit.replace ~path ~by:(Activity.Pick { pk with name }) body
          | Some (Activity.Scope (_, b)) ->
              Edit.replace ~path ~by:(Activity.Scope (name, b)) body
          | Some a -> Error ("cannot rename a " ^ Activity.kind a)
          | None -> Error "invalid path")
        p
  | Compound ops ->
      List.fold_left
        (fun acc op -> Result.bind acc (apply op))
        (Ok p) ops

let apply_exn op p =
  match apply op p with
  | Ok p' -> p'
  | Error e -> invalid_arg ("Change.Ops.apply_exn: " ^ e)
