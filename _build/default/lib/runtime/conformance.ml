(** Conformance between the static theory and the operational engine.

    The paper's Sec. 3.2 claims: "The non-emptiness of the intersection
    of two automata guarantees for the absence of deadlock with respect
    to the execution of these two automata." This module provides the
    operational counterparts used by the test suite's property-based
    checks, plus an online trace monitor. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

(** Two-party agreement between theory and execution: bilateral
    consistency of [a] and [b] (annotated intersection non-empty)
    versus the execution engine's ability to complete a joint run.

    Note the exact correspondence: consistency asserts the existence of
    *one* successful conversation, i.e. the joint system can reach a
    configuration where both parties accept — [Exec.can_complete]. Full
    deadlock-freedom of every schedule additionally depends on the
    automata's internal branching (a party may nondeterministically
    walk into a dead alley); for deterministic public processes whose
    every state can reach a final state — which generation from block
    structures yields — the two coincide. *)
type verdict = {
  consistent : bool;
  can_complete : bool;
  deadlock_free : bool;
  agree : bool;  (** [consistent = can_complete] *)
}

let check ?(party_a = "A") ?(party_b = "B") a b =
  let consistent = Chorev_afsa.Consistency.consistent a b in
  let sys = Exec.make [ (party_a, a); (party_b, b) ] in
  let e = Exec.explore sys in
  let can_complete = e.Exec.completions > 0 in
  {
    consistent;
    can_complete;
    deadlock_free = e.Exec.deadlocks = [];
    agree = consistent = can_complete;
  }

(* ------------------------------------------------------------------ *)
(* Annotated operational deadlock-freedom                              *)
(* ------------------------------------------------------------------ *)

(** Operational counterpart of the annotated emptiness semantics,
    computed on the *joint configuration space* rather than the
    intersection automaton: a configuration is {e good} iff every
    party's annotation at its current state is satisfied — a variable
    (mandatory message) is satisfied when the joint step on it is
    enabled and leads to a good configuration — and a completed
    configuration is reachable through good configurations. The system
    is annotated-deadlock-free iff the initial configuration is good.

    This is an independent re-derivation of bilateral consistency
    (intersection + greatest-fixpoint emptiness): mandatory
    annotations model a party's right to internally commit to any of
    its declared alternatives, which plain reachability
    ({!Exec.can_complete}) cannot see. The test suite checks
    [consistent a b ⇔ annotated_deadlock_free [a; b]] on random
    automata. *)
let annotated_deadlock_free ?(max_configs = 100_000) (s : Exec.system) =
  (* enumerate reachable configurations once *)
  let module K = struct
    type t = (string * int) list

    let equal = ( = )

    let hash = Hashtbl.hash
  end in
  let module H = Hashtbl.Make (K) in
  let configs = H.create 256 in
  let q = Queue.create () in
  let c0 = Exec.initial s in
  H.replace configs (Exec.key c0) c0;
  Queue.add c0 q;
  let truncated = ref false in
  while not (Queue.is_empty q) do
    let c = Queue.pop q in
    List.iter
      (fun (_, c') ->
        let k = Exec.key c' in
        if not (H.mem configs k) then
          if H.length configs >= max_configs then truncated := true
          else begin
            H.replace configs k c';
            Queue.add c' q
          end)
      (Exec.enabled c)
  done;
  if !truncated then
    invalid_arg "Conformance.annotated_deadlock_free: state space truncated";
  (* greatest fixpoint over the reachable configurations *)
  let good = H.create (H.length configs) in
  H.iter (fun k _ -> H.replace good k ()) configs;
  let ann_ok c =
    List.for_all
      (fun (ps : Exec.party_state) ->
        let moves = Exec.enabled c in
        let assign v =
          List.exists
            (fun ((l : Label.t), c') ->
              String.equal (Label.to_string l) v
              && Label.involves ps.party l
              && H.mem good (Exec.key c'))
            moves
        in
        Chorev_formula.Eval.eval ~assign
          (Afsa.annotation ps.automaton ps.state))
      c
  in
  let reach_completion_through_good () =
    (* backward BFS from completed good configs within good configs *)
    let rev = H.create 256 in
    H.iter
      (fun _ c ->
        if H.mem good (Exec.key c) then
          List.iter
            (fun (_, c') ->
              if H.mem good (Exec.key c') then
                H.replace rev (Exec.key c')
                  (c :: Option.value ~default:[] (H.find_opt rev (Exec.key c'))))
            (Exec.enabled c))
      configs;
    let ok = H.create 256 in
    let bq = Queue.create () in
    H.iter
      (fun k c ->
        if Exec.completed c && H.mem good k then begin
          H.replace ok k ();
          Queue.add c bq
        end)
      configs;
    while not (Queue.is_empty bq) do
      let c = Queue.pop bq in
      List.iter
        (fun p ->
          let k = Exec.key p in
          if not (H.mem ok k) then begin
            H.replace ok k ();
            Queue.add p bq
          end)
        (Option.value ~default:[] (H.find_opt rev (Exec.key c)))
    done;
    ok
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let ok = reach_completion_through_good () in
    H.iter
      (fun k c ->
        if H.mem good k && ((not (H.mem ok k)) || not (ann_ok c)) then begin
          H.remove good k;
          changed := true
        end)
      configs
  done;
  H.mem good (Exec.key c0)

(* ------------------------------------------------------------------ *)
(* Trace monitoring                                                    *)
(* ------------------------------------------------------------------ *)

type monitor_verdict =
  | Accepted  (** trace led every party to a final state *)
  | Incomplete  (** trace is a valid prefix but parties not all final *)
  | Violated of { at : int; label : Label.t }
      (** step [at] was not executable *)

(** Replay [trace] against the system: each label must be a joint step
    of its endpoints. Nondeterministic automata are handled by tracking
    every configuration the trace may have reached. *)
let monitor (s : Exec.system) (trace : Label.t list) : monitor_verdict =
  let rec go configs i = function
    | [] ->
        if List.exists Exec.completed configs then Accepted else Incomplete
    | l :: rest -> (
        let next =
          List.concat_map
            (fun c ->
              List.filter_map
                (fun (l', c') -> if Label.equal l l' then Some c' else None)
                (Exec.enabled c))
            configs
          |> List.sort_uniq compare
        in
        match next with
        | [] -> Violated { at = i; label = l }
        | _ -> go next (i + 1) rest)
  in
  go [ Exec.initial s ] 0 trace

(** Does the witness conversation produced by the consistency checker
    actually replay on the execution engine? (Used as an integration
    check: theory's witness must be operationally executable.) *)
let witness_replays ?(party_a = "A") ?(party_b = "B") a b =
  match (Chorev_afsa.Consistency.check a b).Chorev_afsa.Consistency.witness with
  | None -> true (* inconsistent: nothing to replay *)
  | Some w -> (
      match monitor (Exec.make [ (party_a, a); (party_b, b) ]) w with
      | Accepted -> true
      | Incomplete | Violated _ -> false)
