(** Conformance between the static theory and the execution engine,
    plus an online trace monitor. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label

type verdict = {
  consistent : bool;
  can_complete : bool;
  deadlock_free : bool;
  agree : bool;  (** [consistent = can_complete] *)
}

val check : ?party_a:string -> ?party_b:string -> Afsa.t -> Afsa.t -> verdict
(** Plain correspondence: consistency vs. joint completability. Exact
    for annotation-free automata; with annotations use
    {!annotated_deadlock_free}. *)

val annotated_deadlock_free : ?max_configs:int -> Exec.system -> bool
(** Operational counterpart of the annotated emptiness semantics on the
    joint configuration space (greatest fixpoint): mandatory
    annotations model a party's right to commit internally to any
    declared alternative. [consistent a b ⇔
    annotated_deadlock_free [a; b]] — property-tested. Raises
    [Invalid_argument] when the state space exceeds [max_configs]. *)

type monitor_verdict =
  | Accepted
  | Incomplete
  | Violated of { at : int; label : Label.t }

val monitor : Exec.system -> Label.t list -> monitor_verdict
(** Replay a trace as joint steps; nondeterminism is tracked via
    configuration sets. *)

val witness_replays :
  ?party_a:string -> ?party_b:string -> Afsa.t -> Afsa.t -> bool
(** Does the consistency witness execute on the engine? [true] when
    inconsistent (nothing to replay). *)
