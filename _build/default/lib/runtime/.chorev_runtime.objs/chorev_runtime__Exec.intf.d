lib/runtime/exec.pp.mli: Chorev_afsa Format
