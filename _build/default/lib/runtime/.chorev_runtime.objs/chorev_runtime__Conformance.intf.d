lib/runtime/conformance.pp.mli: Chorev_afsa Exec
