lib/runtime/exec.pp.ml: Chorev_afsa Fmt Hashtbl List Queue Random String
