lib/runtime/conformance.pp.ml: Chorev_afsa Chorev_formula Exec Hashtbl List Option Queue String
