lib/migration/instance.pp.mli: Chorev_afsa Format
