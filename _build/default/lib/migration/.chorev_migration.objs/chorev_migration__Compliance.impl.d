lib/migration/compliance.pp.ml: Chorev_afsa Instance List Ppx_deriving_runtime
