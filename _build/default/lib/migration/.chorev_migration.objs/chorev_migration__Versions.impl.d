lib/migration/versions.pp.ml: Chorev_afsa Compliance Fmt Instance List String
