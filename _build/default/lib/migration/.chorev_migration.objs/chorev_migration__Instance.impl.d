lib/migration/instance.pp.ml: Chorev_afsa List Ppx_deriving_runtime Random Result
