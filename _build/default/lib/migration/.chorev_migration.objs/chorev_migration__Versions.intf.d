lib/migration/versions.pp.mli: Chorev_afsa Format Instance
