lib/migration/compliance.pp.mli: Chorev_afsa Format Instance
