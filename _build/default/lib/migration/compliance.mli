(** The ADEPT compliance criterion (Rinderle et al., DKE 2004) applied
    to public processes: an instance migrates iff its trace replays on
    the new process and an annotated-accepting continuation remains. *)

module Afsa = Chorev_afsa.Afsa

type verdict =
  | Migratable of { resume_states : int list }
  | Not_compliant of { at : int; label : Chorev_afsa.Label.t }
  | Dead_end of { resume_states : int list }

val pp_verdict : Format.formatter -> verdict -> unit
val show_verdict : verdict -> string

val is_migratable : verdict -> bool
val check : Afsa.t -> Instance.t -> verdict

val partition :
  Afsa.t -> Instance.t list -> Instance.t list * Instance.t list
(** (migratable, blocked). *)

type disposition = Migrate | Finish_on_old | Stuck

val equal_disposition : disposition -> disposition -> bool
val pp_disposition : Format.formatter -> disposition -> unit
val show_disposition : disposition -> string

val dispose :
  old_public:Afsa.t -> new_public:Afsa.t -> Instance.t -> disposition
(** Delayed migration: non-compliant instances may finish on the old
    version when still able to. *)
