(** Version coexistence (Sec. 8: "the co-existence of different
    versions of a process choreography is a must"): version history of
    one party's public process with instances pinned to versions;
    publishing migrates compliant instances, drained versions retire. *)

module Afsa = Chorev_afsa.Afsa

type version = {
  number : int;
  public : Afsa.t;
  mutable instances : Instance.t list;
}

type t

type migration_report = {
  to_version : int;
  migrated : string list;
  finishing_on_old : (string * int) list;
  stuck : string list;
}

val create : Afsa.t -> t
val current : t -> version
val current_public : t -> Afsa.t
val version_numbers : t -> int list
val find_version : t -> int -> version option

val start : t -> Instance.t -> unit
(** New instance on the current version. *)

val observe : t -> id:string -> Chorev_afsa.Label.t -> unit
(** Record a message on a running instance. *)

val all_instances : t -> (int * Instance.t) list

val publish : t -> Afsa.t -> migration_report
(** New version; compliant instances of all live versions migrate. *)

val retire_drained : t -> int list
(** Retire versions with no instances (never the current); returns the
    retired numbers. *)

val pp_report : Format.formatter -> migration_report -> unit
