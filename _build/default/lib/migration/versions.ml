(** Version coexistence for evolving public processes.

    "The co-existence of different versions of a process choreography
    is a must in this context" (Sec. 8). A {!t} holds the version
    history of one party's public process and the running instances
    pinned to each version. Publishing a new version migrates every
    compliant instance (the ADEPT strategy) and leaves the others to
    finish on their version; fully drained old versions can be
    retired. *)

module Afsa = Chorev_afsa.Afsa

type version = {
  number : int;
  public : Afsa.t;
  mutable instances : Instance.t list;
}

type t = {
  mutable versions : version list;  (** newest first *)
  mutable retired : int list;
}

type migration_report = {
  to_version : int;
  migrated : string list;  (** instance ids *)
  finishing_on_old : (string * int) list;  (** id, version *)
  stuck : string list;
}

let create public =
  { versions = [ { number = 1; public; instances = [] } ]; retired = [] }

let current t = List.hd t.versions
let current_public t = (current t).public
let version_numbers t = List.map (fun v -> v.number) t.versions

let find_version t n = List.find_opt (fun v -> v.number = n) t.versions

(** Start a new instance on the current version. *)
let start t inst =
  let v = current t in
  v.instances <- inst :: v.instances

(** Record a message on a running instance (wherever it lives). *)
let observe t ~id label =
  List.iter
    (fun v ->
      v.instances <-
        List.map
          (fun (i : Instance.t) ->
            if String.equal i.Instance.id id then Instance.extend i label
            else i)
          v.instances)
    t.versions

let all_instances t =
  List.concat_map (fun v -> List.map (fun i -> (v.number, i)) v.instances) t.versions

(** Publish a new public process: compliant instances of *all* live
    versions migrate to it; the rest stay where they are (or are
    reported stuck). *)
let publish t new_public =
  let number = (current t).number + 1 in
  let fresh = { number; public = new_public; instances = [] } in
  let migrated = ref [] in
  let finishing = ref [] in
  let stuck = ref [] in
  List.iter
    (fun v ->
      let stay, go =
        List.partition
          (fun inst ->
            match
              Compliance.dispose ~old_public:v.public ~new_public inst
            with
            | Compliance.Migrate -> false
            | Compliance.Finish_on_old -> true
            | Compliance.Stuck ->
                stuck := inst.Instance.id :: !stuck;
                true)
          v.instances
      in
      List.iter
        (fun (i : Instance.t) -> migrated := i.Instance.id :: !migrated)
        go;
      List.iter
        (fun (i : Instance.t) ->
          if not (List.mem i.Instance.id !stuck) then
            finishing := (i.Instance.id, v.number) :: !finishing)
        stay;
      v.instances <- stay;
      fresh.instances <- go @ fresh.instances)
    t.versions;
  t.versions <- fresh :: t.versions;
  {
    to_version = number;
    migrated = List.rev !migrated;
    finishing_on_old = List.rev !finishing;
    stuck = List.rev !stuck;
  }

(** Retire versions with no remaining instances (never the current). *)
let retire_drained t =
  let cur = (current t).number in
  let keep, drop =
    List.partition
      (fun v -> v.number = cur || v.instances <> [])
      t.versions
  in
  t.versions <- keep;
  t.retired <- List.map (fun v -> v.number) drop @ t.retired;
  List.map (fun v -> v.number) drop

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>migration to v%d: %d migrated (%a)@,%d finishing on old versions@,%d stuck@]"
    r.to_version
    (List.length r.migrated)
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    r.migrated
    (List.length r.finishing_on_old)
    (List.length r.stuck)
