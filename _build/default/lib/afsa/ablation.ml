(** Ablation variants of the semantic decisions documented in
    DESIGN.md. Each function here is a *deliberately naive* alternative
    kept so tests and benchmarks can demonstrate why the main
    implementation makes the choice it makes. None of these are part of
    the recommended API. *)

module F = Chorev_formula.Syntax
module ISet = Afsa.ISet

(** Least-fixpoint annotated emptiness: [sat] grows from ∅ instead of
    shrinking from Q. Sound for acyclic protocols but wrongly rejects
    loops whose annotations support each other mutually (the buyer's
    tracking loop of Fig. 6): with this semantics, buyer ↔ accounting
    of the paper's scenario comes out INCONSISTENT. *)
let analyze_least_fixpoint a =
  let holds sat q =
    let assign v =
      List.exists
        (fun (sym, t) ->
          match sym with
          | Sym.Eps -> false
          | Sym.L l -> String.equal (Label.to_string l) v && ISet.mem t sat)
        (Afsa.out_edges a q)
    in
    let ann_ok = Chorev_formula.Eval.eval ~assign (Afsa.annotation a q) in
    let continues =
      Afsa.is_final a q
      || List.exists (fun (_, t) -> ISet.mem t sat) (Afsa.out_edges a q)
    in
    ann_ok && continues
  in
  let rec fix sat =
    let sat' =
      List.fold_left
        (fun acc q -> if holds sat q then ISet.add q acc else acc)
        ISet.empty (Afsa.states a)
    in
    if ISet.equal sat' sat then sat else fix sat'
  in
  let sat = fix ISet.empty in
  ISet.mem (Afsa.start a) sat

let is_empty_least_fixpoint a = not (analyze_least_fixpoint a)

(** Minimization that ignores annotations in the initial partition.
    Merges states with different mandatory obligations, silently
    weakening or strengthening the protocol: with this variant the
    minimized buyer public process of Fig. 6 can lose the distinction
    that makes Fig. 16's subtractive verdict come out empty. *)
let minimize_ignoring_annotations a =
  Minimize.minimize (Afsa.clear_annotations a)

(** Views that substitute hidden message variables with [false] instead
    of [true]: hidden obligations would then be unsatisfiable from the
    observer's standpoint, and every view containing a multi-party
    obligation would be empty. *)
let tau_hidden_false ~observer a =
  let keep l = Label.involves observer l in
  let edges =
    List.map
      (fun (s, sym, t) ->
        match sym with
        | Sym.Eps -> (s, Sym.Eps, t)
        | Sym.L l -> if keep l then (s, sym, t) else (s, Sym.Eps, t))
      (Afsa.edges a)
  in
  let visible v =
    match Label.of_string v with Ok l -> keep l | Error _ -> false
  in
  let ann =
    List.map
      (fun (q, f) ->
        ( q,
          Chorev_formula.Simplify.simplify
            (Chorev_formula.Eval.restrict_to ~keep:visible ~default:false f) ))
      (Afsa.annotations a)
  in
  Afsa.make
    ~alphabet:(List.filter keep (Afsa.alphabet a))
    ~start:(Afsa.start a) ~finals:(Afsa.finals a) ~edges ~ann ()
  |> Epsilon.eliminate
