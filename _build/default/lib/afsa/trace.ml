(** Word acceptance and language enumeration. *)

module ISet = Afsa.ISet

(** Plain acceptance (annotations ignored): NFA simulation with
    ε-closure. *)
let accepts a word =
  let step set l =
    Epsilon.closure a set |> fun cl ->
    ISet.fold
      (fun q acc -> ISet.union (Afsa.step a q (Sym.L l)) acc)
      cl ISet.empty
  in
  let final_set =
    List.fold_left step (ISet.singleton (Afsa.start a)) word
    |> Epsilon.closure a
  in
  ISet.exists (Afsa.is_final a) final_set

(** Annotated acceptance: the word must be accepted by a run that stays
    within the [sat] states of the emptiness fixpoint, i.e. a run along
    which every annotation holds. *)
let accepts_annotated a word =
  let { Emptiness.sat; _ } = Emptiness.analyze a in
  let restrict set = ISet.inter set sat in
  let step set l =
    Epsilon.closure a set |> restrict |> fun cl ->
    ISet.fold
      (fun q acc -> ISet.union (Afsa.step a q (Sym.L l)) acc)
      cl ISet.empty
    |> restrict
  in
  let init = restrict (ISet.singleton (Afsa.start a)) in
  let final_set = List.fold_left step init word |> Epsilon.closure a in
  ISet.exists (fun q -> Afsa.is_final a q && ISet.mem q sat) final_set

(** All accepted words of length ≤ [max_len] (plain language). The
    number of words is truncated at [limit] (default 10_000). *)
let enumerate ?(limit = 10_000) ~max_len a =
  let out = ref [] in
  let count = ref 0 in
  let rec go set word len =
    if !count >= limit then ()
    else begin
      let cl = Epsilon.closure a set in
      if ISet.exists (Afsa.is_final a) cl then begin
        incr count;
        out := List.rev word :: !out
      end;
      if len < max_len then
        List.iter
          (fun l ->
            let next =
              ISet.fold
                (fun q acc -> ISet.union (Afsa.step a q (Sym.L l)) acc)
                cl ISet.empty
            in
            if not (ISet.is_empty next) then go next (l :: word) (len + 1))
          (Afsa.alphabet a)
    end
  in
  go (ISet.singleton (Afsa.start a)) [] 0;
  List.rev !out

(** Shortest accepted word (plain), if any. *)
let shortest a =
  let module Q = Queue in
  let q = Q.create () in
  let seen = Hashtbl.create 16 in
  let key set = ISet.elements set in
  let push set w =
    let k = key set in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      Q.add (set, w) q
    end
  in
  push (Epsilon.closure a (ISet.singleton (Afsa.start a))) [];
  let rec bfs () =
    if Q.is_empty q then None
    else
      let set, w = Q.pop q in
      if ISet.exists (Afsa.is_final a) set then Some (List.rev w)
      else begin
        List.iter
          (fun l ->
            let next =
              ISet.fold
                (fun st acc -> ISet.union (Afsa.step a st (Sym.L l)) acc)
                set ISet.empty
            in
            if not (ISet.is_empty next) then
              push (Epsilon.closure a next) (l :: w))
          (Afsa.alphabet a);
        bfs ()
      end
  in
  bfs ()
