(** Annotated emptiness test (Sec. 3.2 of the paper).

    A standard FSA is non-empty when a final state is reachable; the
    aFSA test additionally requires that every formula annotated to a
    state on the accepting path evaluates to true, where a variable [v]
    is true at state [q] iff there is a [v]-labeled transition from [q]
    to a state that itself admits acceptance. In the paper's words: "all
    transitions of a conjunction associated to a single state are
    available in the automaton and a final state can be reached
    following each of these transitions".

    We compute the *greatest* fixpoint of the predicate
    [sat : Q -> bool]:

      sat(q) = eval(ann(q), σ_q) ∧ reach_final_through_sat(q)
      σ_q(v) = ∃ (q,v,q') ∈ Δ. sat(q')

    where [reach_final_through_sat(q)] holds when a final sat-state is
    reachable from [q] via sat-states only. Starting from sat = Q and
    shrinking is essential: protocol loops support their annotations
    mutually (the buyer's tracking loop of Fig. 6 requires
    [get_statusOp], whose target supports the loop head in turn), which
    a least fixpoint would wrongly reject; the reachability conjunct
    rules out vacuous self-supporting cycles that never reach a final
    state. Both conjuncts are monotone in [sat] for positive
    annotations (all the paper uses), so the iteration converges to the
    greatest fixpoint; for annotations containing negation the result
    is an approximation and the API reports a warning.

    The automaton is non-empty iff sat(q0) — equivalently, iff "the
    annotation of the start state is true" in the paper's phrasing. *)

module F = Chorev_formula.Syntax
module ISet = Afsa.ISet

type result = {
  sat : ISet.t;  (** states from which annotated acceptance is possible *)
  nonempty : bool;
  warning : string option;
      (** set when a non-positive annotation was encountered *)
}

(* States that can reach a final state of [sat] moving through [sat]
   states only: backward closure from F ∩ sat inside sat. *)
let reach_final_through a sat =
  let rev = Hashtbl.create 16 in
  List.iter
    (fun (s, _, t) ->
      if ISet.mem s sat && ISet.mem t sat then
        Hashtbl.replace rev t (s :: Option.value ~default:[] (Hashtbl.find_opt rev t)))
    (Afsa.edges a);
  let seeds = List.filter (fun f -> ISet.mem f sat) (Afsa.finals a) in
  let rec go seen = function
    | [] -> seen
    | q :: rest ->
        if ISet.mem q seen then go seen rest
        else
          let preds = Option.value ~default:[] (Hashtbl.find_opt rev q) in
          go (ISet.add q seen) (preds @ rest)
  in
  go ISet.empty seeds

let analyze a =
  let warning =
    if List.for_all (fun (_, f) -> F.is_positive f) (Afsa.annotations a) then
      None
    else
      Some
        "annotation contains negation: emptiness fixpoint is an \
         approximation only"
  in
  let holds sat q =
    let assign v =
      (* σ_q(v): some v-labeled edge to a sat state. *)
      List.exists
        (fun (sym, t) ->
          match sym with
          | Sym.Eps -> false
          | Sym.L l -> String.equal (Label.to_string l) v && ISet.mem t sat)
        (Afsa.out_edges a q)
    in
    Chorev_formula.Eval.eval ~assign (Afsa.annotation a q)
  in
  let rec fix sat =
    let reach = reach_final_through a sat in
    let sat' = ISet.filter (fun q -> ISet.mem q reach && holds sat q) sat in
    if ISet.equal sat' sat then sat else fix sat'
  in
  let sat = fix a.Afsa.states in
  { sat; nonempty = ISet.mem (Afsa.start a) sat; warning }

(** An aFSA is empty when no message sequence satisfying all mandatory
    annotations leads from the start state to a final state. *)
let is_empty a = not (analyze a).nonempty

let is_nonempty a = (analyze a).nonempty

(** Plain (annotation-oblivious) emptiness: no final state reachable. *)
let is_empty_plain a =
  let r = Afsa.reachable_from a (Afsa.start a) in
  not (List.exists (fun f -> ISet.mem f r) (Afsa.finals a))

(** Shortest witness of annotated non-emptiness: a label sequence along
    sat-states from the start to a final sat-state. [None] if empty. *)
let witness a =
  let { sat; nonempty; _ } = analyze a in
  if not nonempty then None
  else
    let module Q = Queue in
    let q = Q.create () in
    Q.add (Afsa.start a, []) q;
    let seen = ref (ISet.singleton (Afsa.start a)) in
    let rec bfs () =
      if Q.is_empty q then None
      else
        let st, path = Q.pop q in
        if Afsa.is_final a st then Some (List.rev path)
        else begin
          List.iter
            (fun (sym, t) ->
              if ISet.mem t sat && not (ISet.mem t !seen) then begin
                seen := ISet.add t !seen;
                let path' =
                  match sym with Sym.Eps -> path | Sym.L l -> l :: path
                in
                Q.add (t, path') q
              end)
            (Afsa.out_edges a st);
          bfs ()
        end
    in
    bfs ()
