(** Language inclusion and equality. *)

val included : Afsa.t -> Afsa.t -> bool
val equal_language : Afsa.t -> Afsa.t -> bool
val strictly_includes : Afsa.t -> Afsa.t -> bool

val equal_annotated : Afsa.t -> Afsa.t -> bool
(** Equal plain language and equal annotations, decided by structural
    equality of the canonical minimized forms. *)
