(** Textual rendering of aFSAs for logs and test failure messages. *)

let abbrev_var v =
  match Label.of_string v with Ok l -> l.Label.msg | Error _ -> v

let pp ?(abbrev = false) ppf a =
  let lbl sym =
    match sym with
    | Sym.Eps -> "ε"
    | Sym.L l -> if abbrev then l.Label.msg else Label.to_string l
  in
  Fmt.pf ppf "@[<v>aFSA: %d states, %d edges, start=%d, finals={%a}@,"
    (Afsa.num_states a) (Afsa.num_edges a) (Afsa.start a)
    Fmt.(list ~sep:(any ",") int)
    (Afsa.finals a);
  List.iter
    (fun (s, sym, t) -> Fmt.pf ppf "  %d --%s--> %d@," s (lbl sym) t)
    (List.sort compare (Afsa.edges a));
  List.iter
    (fun (q, f) ->
      if abbrev then
        Fmt.pf ppf "  ann(%d) = %a@," q
          (Chorev_formula.Pp.pp_abbrev abbrev_var)
          f
      else Fmt.pf ppf "  ann(%d) = %a@," q Chorev_formula.Pp.pp f)
    (Afsa.annotations a);
  Fmt.pf ppf "@]"

let to_string ?abbrev a = Fmt.str "%a" (pp ?abbrev) a
