(** Word acceptance and language enumeration. *)

val accepts : Afsa.t -> Label.t list -> bool
(** Plain acceptance (annotations ignored). *)

val accepts_annotated : Afsa.t -> Label.t list -> bool
(** Acceptance by a run staying within the emptiness fixpoint's
    sat-states — every annotation holds along the way. *)

val enumerate : ?limit:int -> max_len:int -> Afsa.t -> Label.t list list
(** Accepted words up to a length bound (truncated at [limit],
    default 10000). *)

val shortest : Afsa.t -> Label.t list option
