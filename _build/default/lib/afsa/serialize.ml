(** Line-based textual persistence for aFSAs.

    {v
    afsa v1
    alphabet A#B#x B#A#y
    start 0
    finals 2 3
    edge 0 A#B#x 1
    edge 1 eps 2
    ann 1 A#B#x AND B#A#y
    v}

    [to_string] / [of_string] round-trip structurally. The formula on
    an [ann] line extends to the end of the line and is parsed with
    {!Chorev_formula.Parse}. *)

module F = Chorev_formula.Syntax

let to_string (a : Afsa.t) =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "afsa v1\n";
  pf "alphabet%s\n"
    (String.concat ""
       (List.map (fun l -> " " ^ Label.to_string l) (Afsa.alphabet a)));
  pf "start %d\n" (Afsa.start a);
  pf "finals%s\n"
    (String.concat "" (List.map (fun q -> Printf.sprintf " %d" q) (Afsa.finals a)));
  List.iter
    (fun (s, sym, t) ->
      pf "edge %d %s %d\n" s
        (match sym with Sym.Eps -> "eps" | Sym.L l -> Label.to_string l)
        t)
    (List.sort compare (Afsa.edges a));
  List.iter
    (fun (q, f) -> pf "ann %d %s\n" q (Chorev_formula.Pp.to_string f))
    (Afsa.annotations a);
  Buffer.contents buf

let of_string s : (Afsa.t, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rest ->
      if not (String.equal header "afsa v1") then
        err "bad header %S" header
      else begin
        let alphabet = ref [] in
        let start = ref None in
        let finals = ref [] in
        let edges = ref [] in
        let anns = ref [] in
        let parse_line line =
          match String.split_on_char ' ' line with
          | "alphabet" :: labels ->
              alphabet :=
                List.filter_map
                  (fun l -> Result.to_option (Label.of_string l))
                  labels;
              Ok ()
          | [ "start"; q ] -> (
              match int_of_string_opt q with
              | Some q ->
                  start := Some q;
                  Ok ()
              | None -> Error ("bad start state: " ^ q))
          | "finals" :: qs ->
              let parsed = List.filter_map int_of_string_opt qs in
              if List.length parsed <> List.length qs then
                Error ("bad finals line: " ^ line)
              else begin
                finals := parsed;
                Ok ()
              end
          | [ "edge"; s_; l; t ] -> (
              match (int_of_string_opt s_, int_of_string_opt t) with
              | Some s_, Some t ->
                  if String.equal l "eps" then begin
                    edges := (s_, Sym.Eps, t) :: !edges;
                    Ok ()
                  end
                  else (
                    match Label.of_string l with
                    | Ok lab ->
                        edges := (s_, Sym.L lab, t) :: !edges;
                        Ok ()
                    | Error e -> Error e)
              | _ -> Error ("bad edge line: " ^ line))
          | "ann" :: q :: formula_words -> (
              match int_of_string_opt q with
              | None -> Error ("bad ann state: " ^ line)
              | Some q -> (
                  match
                    Chorev_formula.Parse.of_string
                      (String.concat " " formula_words)
                  with
                  | Ok f ->
                      anns := (q, f) :: !anns;
                      Ok ()
                  | Error e -> Error ("bad ann formula: " ^ e)))
          | _ -> Error ("unrecognized line: " ^ line)
        in
        let rec go = function
          | [] -> Ok ()
          | l :: rest -> (
              match parse_line l with Ok () -> go rest | Error e -> Error e)
        in
        match go rest with
        | Error e -> Error e
        | Ok () -> (
            match !start with
            | None -> Error "missing start line"
            | Some start ->
                Ok
                  (Afsa.make ~alphabet:!alphabet ~start ~finals:!finals
                     ~edges:!edges ~ann:!anns ()))
      end

let of_string_exn s =
  match of_string s with
  | Ok a -> a
  | Error e -> invalid_arg ("Afsa.Serialize.of_string_exn: " ^ e)

let to_file ~path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string a))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
