(** ε-closure and ε-elimination.

    View generation (Sec. 3.4) relabels foreign transitions with ε; the
    resulting automaton is then ε-eliminated before minimization.
    Annotations of states merged along ε-paths are combined by
    conjunction: every obligation of a state silently reachable from [q]
    is already an obligation at [q]. *)

module F = Chorev_formula.Syntax
module ISet = Afsa.ISet

(** ε-closure of a state set. *)
let closure a set =
  let rec go seen = function
    | [] -> seen
    | q :: rest ->
        if ISet.mem q seen then go seen rest
        else
          let eps_succ = Afsa.step a q Sym.Eps in
          go (ISet.add q seen) (ISet.elements eps_succ @ rest)
  in
  go ISet.empty (ISet.elements set)

let closure_of a q = closure a (ISet.singleton q)

(** Remove all ε-transitions, preserving the language. For each state
    [q], the new outgoing edges are the proper edges of all states in
    the ε-closure of [q]; [q] is final if its closure meets a final
    state; its annotation is the conjunction of the closure's
    annotations. Unreachable states are dropped. *)
let eliminate a =
  if not (Afsa.has_eps a) then a
  else
    let states = Afsa.states a in
    let cl = List.map (fun q -> (q, closure_of a q)) states in
    let cl_tbl = List.to_seq cl |> Afsa.IMap.of_seq in
    let edges =
      List.concat_map
        (fun q ->
          let c = Afsa.IMap.find q cl_tbl in
          ISet.fold
            (fun p acc ->
              List.filter_map
                (fun (sym, t) ->
                  match sym with
                  | Sym.Eps -> None
                  | Sym.L _ -> Some (q, sym, t))
                (Afsa.out_edges a p)
              @ acc)
            c [])
        states
    in
    let finals =
      List.filter
        (fun q ->
          let c = Afsa.IMap.find q cl_tbl in
          ISet.exists (Afsa.is_final a) c)
        states
    in
    let ann =
      List.filter_map
        (fun q ->
          let c = Afsa.IMap.find q cl_tbl in
          let f =
            ISet.fold (fun p acc -> F.and_ (Afsa.annotation a p) acc) c F.True
          in
          let f = Chorev_formula.Simplify.simplify f in
          if F.equal f F.True then None else Some (q, f))
        states
    in
    Afsa.make
      ~alphabet:(Afsa.alphabet a)
      ~start:(Afsa.start a) ~finals ~edges ~ann ()
    |> Afsa.trim_unreachable
