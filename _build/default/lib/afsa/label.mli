(** Transition labels: [A#B#msg] means party [A] sends message [msg]
    to party [B] (Sec. 3.2 of the paper). *)

type t = { sender : string; receiver : string; msg : string }

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

val make : sender:string -> receiver:string -> string -> t
val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse ["A#B#msg"]. *)

val of_string_exn : string -> t

val involves : string -> t -> bool
(** Is the party the sender or the receiver? *)

val counterparty : string -> t -> string option
(** The other endpoint, when the party is involved. *)

val pp_short : Format.formatter -> t -> unit
(** Message name only, as the paper's figures abbreviate. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
