(** Graphviz export, rendering aFSAs the way the paper draws them:
    circles for states, double circles for final states, and annotation
    boxes attached to annotated states. *)

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?(name = "afsa") ?(abbrev = true) a =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph %s {\n  rankdir=LR;\n  node [shape=circle];\n" name;
  pf "  __start [shape=point];\n";
  List.iter
    (fun q ->
      let shape = if Afsa.is_final a q then "doublecircle" else "circle" in
      pf "  q%d [shape=%s,label=\"%d\"];\n" q shape q)
    (Afsa.states a);
  pf "  __start -> q%d;\n" (Afsa.start a);
  List.iter
    (fun (s, sym, t) ->
      let lbl =
        match sym with
        | Sym.Eps -> "ε"
        | Sym.L l -> if abbrev then l.Label.msg else Label.to_string l
      in
      pf "  q%d -> q%d [label=\"%s\"];\n" s t (escape lbl))
    (Afsa.edges a);
  List.iter
    (fun (q, f) ->
      let txt =
        if abbrev then
          Fmt.str "%a"
            (Chorev_formula.Pp.pp_abbrev (fun v ->
                 match Label.of_string v with
                 | Ok l -> l.Label.msg
                 | Error _ -> v))
            f
        else Chorev_formula.Pp.to_string f
      in
      pf "  a%d [shape=box,fontsize=10,label=\"%s\"];\n" q (escape txt);
      pf "  a%d -> q%d [style=dashed,arrowhead=none];\n" q q)
    (Afsa.annotations a);
  pf "}\n";
  Buffer.contents buf

let to_file ?name ?abbrev ~path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?abbrev a))
