(** Textual rendering of aFSAs for logs and test failure messages. *)

val abbrev_var : string -> string
(** Message-name part of a label variable, as the paper abbreviates. *)

val pp : ?abbrev:bool -> Format.formatter -> Afsa.t -> unit
val to_string : ?abbrev:bool -> Afsa.t -> string
