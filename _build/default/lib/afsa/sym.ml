(** Transition symbols: either a proper label or the empty word ε.

    ε-transitions arise from view generation (Sec. 3.4): transitions not
    related to the observing party are relabeled with ε. *)

type t = Eps | L of Label.t [@@deriving eq, ord, show]

let eps = Eps
let label l = L l
let of_label_string s = L (Label.of_string_exn s)
let is_eps = function Eps -> true | L _ -> false
let to_label = function Eps -> None | L l -> Some l

let to_string = function Eps -> "ε" | L l -> Label.to_string l

let pp ppf = function
  | Eps -> Fmt.string ppf "ε"
  | L l -> Fmt.string ppf (Label.to_string l)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
