(** Graphviz export in the paper's drawing style: double circles for
    final states, dashed boxes for annotations. *)

val to_dot : ?name:string -> ?abbrev:bool -> Afsa.t -> string
val to_file : ?name:string -> ?abbrev:bool -> path:string -> Afsa.t -> unit
