(** Generic ε-tolerant product over pair states — the common core of
    intersection (Def. 3) and difference (Def. 4): synchronize on
    shared labels, interleave ε-moves, combine annotations with the
    given operator. *)

module PMap : Map.S with type key = int * int

type spec = {
  alphabet : Label.t list;
  final : int * int -> bool;
  combine_ann :
    Chorev_formula.Syntax.t ->
    Chorev_formula.Syntax.t ->
    Chorev_formula.Syntax.t;
}

val run : spec -> Afsa.t -> Afsa.t -> Afsa.t * int PMap.t
(** Reachable part only; returns the pair ↦ product-state map. *)
