(** Bilateral consistency (Sec. 3.2).

    Two public processes are consistent — their interaction is
    deadlock-free — iff their intersection is non-empty under the
    annotated emptiness test: there is at least one execution sequence
    to a final state along which every mandatory obligation is met. *)

type verdict = {
  consistent : bool;
  intersection : Afsa.t;
  witness : Label.t list option;
      (** a deadlock-free conversation, when consistent *)
}

let check a b =
  let i = Ops.intersect a b in
  let consistent = Emptiness.is_nonempty i in
  let witness = if consistent then Emptiness.witness i else None in
  { consistent; intersection = i; witness }

(** [consistent a b] — the paper's bilateral consistency predicate. *)
let consistent a b = Emptiness.is_nonempty (Ops.intersect a b)
