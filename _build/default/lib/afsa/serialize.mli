(** Line-based textual persistence; [to_string]/[of_string] round-trip
    structurally. See the implementation header for the format. *)

val to_string : Afsa.t -> string
val of_string : string -> (Afsa.t, string) result
val of_string_exn : string -> Afsa.t
val to_file : path:string -> Afsa.t -> unit
val of_file : string -> (Afsa.t, string) result
