(** Transition symbols: a proper label or the empty word ε (view
    generation relabels foreign transitions with ε, Sec. 3.4). *)

type t = Eps | L of Label.t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

val eps : t
val label : Label.t -> t
val of_label_string : string -> t
val is_eps : t -> bool
val to_label : t -> Label.t option
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
