(** Transition labels of annotated FSAs.

    A label [A#B#msg] denotes party [A] sending message [msg] to party
    [B] (Sec. 3.2 of the paper). Parties are plain strings; [msg] is an
    operation name such as ["orderOp"]. *)

type t = { sender : string; receiver : string; msg : string }
[@@deriving eq, ord, show]

let make ~sender ~receiver msg = { sender; receiver; msg }

let to_string { sender; receiver; msg } =
  String.concat "#" [ sender; receiver; msg ]

(** Parse ["A#B#msg"]. Message names may themselves not contain ['#']. *)
let of_string s =
  match String.split_on_char '#' s with
  | [ sender; receiver; msg ] when sender <> "" && receiver <> "" && msg <> ""
    ->
      Ok { sender; receiver; msg }
  | _ -> Error (Printf.sprintf "Label.of_string: malformed label %S" s)

let of_string_exn s =
  match of_string s with Ok l -> l | Error e -> invalid_arg e

(** [involves p l] holds when [p] is the sender or the receiver. *)
let involves p { sender; receiver; _ } =
  String.equal p sender || String.equal p receiver

(** The other endpoint of a label from [p]'s point of view. *)
let counterparty p l =
  if String.equal p l.sender then Some l.receiver
  else if String.equal p l.receiver then Some l.sender
  else None

let pp_short ppf l = Fmt.string ppf l.msg

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
