lib/afsa/sym.pp.ml: Fmt Label Map Ppx_deriving_runtime Set
