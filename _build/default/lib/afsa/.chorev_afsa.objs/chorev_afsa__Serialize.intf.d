lib/afsa/serialize.pp.mli: Afsa
