lib/afsa/label.pp.mli: Format Map Set
