lib/afsa/trace.pp.ml: Afsa Emptiness Epsilon Hashtbl List Queue Sym
