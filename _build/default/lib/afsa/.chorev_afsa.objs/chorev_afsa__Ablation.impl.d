lib/afsa/ablation.pp.ml: Afsa Chorev_formula Epsilon Label List Minimize String Sym
