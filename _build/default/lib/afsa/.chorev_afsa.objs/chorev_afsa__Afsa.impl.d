lib/afsa/afsa.pp.ml: Chorev_formula Int Label List Map Option Set String Sym
