lib/afsa/ops.pp.mli: Afsa Label
