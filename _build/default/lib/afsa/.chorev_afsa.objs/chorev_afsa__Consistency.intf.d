lib/afsa/consistency.pp.mli: Afsa Label
