lib/afsa/afsa.pp.mli: Chorev_formula Label Map Set Sym
