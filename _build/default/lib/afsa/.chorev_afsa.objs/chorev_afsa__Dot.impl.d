lib/afsa/dot.pp.ml: Afsa Buffer Chorev_formula Fmt Fun Label List Printf String Sym
