lib/afsa/minimize.pp.ml: Afsa Array Chorev_formula Complete Determinize Hashtbl List Option Queue Sym
