lib/afsa/ops.pp.ml: Afsa Chorev_formula Complete Determinize Label List Product
