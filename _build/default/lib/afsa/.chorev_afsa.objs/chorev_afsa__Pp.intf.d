lib/afsa/pp.pp.mli: Afsa Format
