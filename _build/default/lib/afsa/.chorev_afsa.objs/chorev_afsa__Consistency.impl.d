lib/afsa/consistency.pp.ml: Afsa Emptiness Label Ops
