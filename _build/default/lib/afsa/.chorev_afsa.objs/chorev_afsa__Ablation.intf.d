lib/afsa/ablation.pp.mli: Afsa
