lib/afsa/view.pp.mli: Afsa
