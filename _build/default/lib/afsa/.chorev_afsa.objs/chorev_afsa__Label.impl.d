lib/afsa/label.pp.ml: Fmt Map Ppx_deriving_runtime Printf Set String
