lib/afsa/product.pp.ml: Afsa Chorev_formula Label Map Sym
