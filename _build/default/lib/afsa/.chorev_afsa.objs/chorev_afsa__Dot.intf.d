lib/afsa/dot.pp.mli: Afsa
