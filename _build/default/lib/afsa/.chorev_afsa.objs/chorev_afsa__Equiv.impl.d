lib/afsa/equiv.pp.ml: Afsa Emptiness Minimize Ops
