lib/afsa/serialize.pp.ml: Afsa Buffer Chorev_formula Fun In_channel Label List Printf Result String Sym
