lib/afsa/determinize.pp.ml: Afsa Chorev_formula Epsilon List Map Option Sym
