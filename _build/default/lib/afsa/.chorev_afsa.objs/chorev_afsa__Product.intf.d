lib/afsa/product.pp.mli: Afsa Chorev_formula Label Map
