lib/afsa/complete.pp.mli: Afsa Label
