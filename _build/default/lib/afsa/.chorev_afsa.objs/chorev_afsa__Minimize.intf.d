lib/afsa/minimize.pp.mli: Afsa
