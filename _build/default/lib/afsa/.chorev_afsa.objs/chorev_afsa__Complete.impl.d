lib/afsa/complete.pp.ml: Afsa Label List Sym
