lib/afsa/epsilon.pp.ml: Afsa Chorev_formula List Sym
