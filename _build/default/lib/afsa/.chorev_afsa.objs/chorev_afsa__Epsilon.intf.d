lib/afsa/epsilon.pp.mli: Afsa
