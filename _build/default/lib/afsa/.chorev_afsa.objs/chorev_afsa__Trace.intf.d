lib/afsa/trace.pp.mli: Afsa Label
