lib/afsa/equiv.pp.mli: Afsa
