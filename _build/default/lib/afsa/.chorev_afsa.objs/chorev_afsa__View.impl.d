lib/afsa/view.pp.ml: Afsa Chorev_formula Epsilon Hashtbl Label List Minimize String Sym
