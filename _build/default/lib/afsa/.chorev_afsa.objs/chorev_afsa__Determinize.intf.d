lib/afsa/determinize.pp.mli: Afsa
