lib/afsa/emptiness.pp.ml: Afsa Chorev_formula Hashtbl Label List Option Queue String Sym
