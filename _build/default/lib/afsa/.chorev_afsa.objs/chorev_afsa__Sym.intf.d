lib/afsa/sym.pp.mli: Format Label Map Set
