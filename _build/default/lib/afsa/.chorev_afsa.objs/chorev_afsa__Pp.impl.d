lib/afsa/pp.pp.ml: Afsa Chorev_formula Fmt Label List Sym
