lib/afsa/emptiness.pp.mli: Afsa Label
