(** Deliberately naive alternatives to DESIGN.md's semantic decisions,
    kept so tests and benches can demonstrate the decisions are
    load-bearing. Not part of the recommended API. *)

val analyze_least_fixpoint : Afsa.t -> bool
(** Least-fixpoint emptiness: wrongly rejects mutually-supporting
    loops (the Fig. 6 tracking loop). Returns non-emptiness. *)

val is_empty_least_fixpoint : Afsa.t -> bool

val minimize_ignoring_annotations : Afsa.t -> Afsa.t
(** Merges states with different obligations — breaks the Fig. 16
    verdict. *)

val tau_hidden_false : observer:string -> Afsa.t -> Afsa.t
(** Views substituting hidden variables with [false] — kills every
    protocol with multi-party obligations. *)
