(** Bilateral consistency (Sec. 3.2): two public processes interact
    deadlock-free iff their annotated intersection is non-empty. *)

type verdict = {
  consistent : bool;
  intersection : Afsa.t;
  witness : Label.t list option;
      (** a deadlock-free conversation, when consistent *)
}

val check : Afsa.t -> Afsa.t -> verdict
val consistent : Afsa.t -> Afsa.t -> bool
