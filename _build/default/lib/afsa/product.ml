(** Generic ε-tolerant product construction.

    Both intersection (Def. 3) and difference (Def. 4) of the paper are
    products over the pair state space: the automata synchronize on
    shared proper labels, and either side may take its ε-transitions
    alone. The final-state predicate and the annotation combiner are
    parameters. Only the reachable part is built. *)

module F = Chorev_formula.Syntax
module ISet = Afsa.ISet

module PairKey = struct
  type t = int * int

  let compare = compare
end

module PMap = Map.Make (PairKey)

type spec = {
  alphabet : Label.t list;  (** alphabet of the product *)
  final : int * int -> bool;
  combine_ann : F.t -> F.t -> F.t;
}

(** [run spec a b] builds the product automaton; state pairs are
    renumbered densely, the start is [(start a, start b)] = 0. Returns
    the automaton together with the pair ↦ product-state map. *)
let run spec a b =
  let next = ref 0 in
  let ids = ref PMap.empty in
  let edges = ref [] in
  let finals = ref [] in
  let anns = ref [] in
  let alpha = Label.Set.of_list spec.alphabet in
  let rec visit ((q1, q2) as p) =
    match PMap.find_opt p !ids with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        ids := PMap.add p id !ids;
        if spec.final p then finals := id :: !finals;
        let ann =
          Chorev_formula.Simplify.simplify
            (spec.combine_ann (Afsa.annotation a q1) (Afsa.annotation b q2))
        in
        if not (F.equal ann F.True) then anns := (id, ann) :: !anns;
        (* synchronized moves on shared labels *)
        Label.Set.iter
          (fun l ->
            let t1s = Afsa.step a q1 (Sym.L l) in
            let t2s = Afsa.step b q2 (Sym.L l) in
            ISet.iter
              (fun t1 ->
                ISet.iter
                  (fun t2 ->
                    let tid = visit (t1, t2) in
                    edges := (id, Sym.L l, tid) :: !edges)
                  t2s)
              t1s)
          alpha;
        (* lone ε-moves of either side *)
        ISet.iter
          (fun t1 ->
            let tid = visit (t1, q2) in
            edges := (id, Sym.Eps, tid) :: !edges)
          (Afsa.step a q1 Sym.Eps);
        ISet.iter
          (fun t2 ->
            let tid = visit (q1, t2) in
            edges := (id, Sym.Eps, tid) :: !edges)
          (Afsa.step b q2 Sym.Eps);
        id
  in
  let s0 = visit (Afsa.start a, Afsa.start b) in
  let auto =
    Afsa.make ~alphabet:spec.alphabet ~start:s0 ~finals:!finals ~edges:!edges
      ~ann:!anns ()
  in
  (auto, !ids)
