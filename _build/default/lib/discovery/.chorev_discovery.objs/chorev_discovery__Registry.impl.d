lib/discovery/registry.pp.ml: Chorev_afsa Chorev_bpel Chorev_mapping Fmt List String
