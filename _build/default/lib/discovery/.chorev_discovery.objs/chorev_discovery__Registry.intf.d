lib/discovery/registry.pp.mli: Chorev_afsa Chorev_bpel Format
