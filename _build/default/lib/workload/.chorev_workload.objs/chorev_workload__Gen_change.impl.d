lib/workload/gen_change.pp.ml: Activity Chorev_bpel Chorev_change Fun List Option Process Random
