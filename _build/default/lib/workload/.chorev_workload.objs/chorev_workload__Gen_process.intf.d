lib/workload/gen_process.pp.mli: Chorev_bpel
