lib/workload/gen_afsa.pp.ml: Chorev_afsa Chorev_formula Fun Hashtbl List Printf Random
