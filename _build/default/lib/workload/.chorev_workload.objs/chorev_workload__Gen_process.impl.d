lib/workload/gen_process.pp.ml: Activity Chorev_bpel List Printf Process Random String Types
