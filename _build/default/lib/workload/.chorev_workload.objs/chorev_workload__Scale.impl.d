lib/workload/scale.pp.ml: Activity Chorev_bpel List Printf Process Types
