lib/workload/gen_change.pp.mli: Chorev_bpel Chorev_change
