lib/workload/scale.pp.mli: Chorev_bpel
