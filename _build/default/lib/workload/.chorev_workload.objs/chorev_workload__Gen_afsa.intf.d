lib/workload/gen_afsa.pp.mli: Chorev_afsa
