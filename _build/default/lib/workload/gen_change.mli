(** Random valid change operations for a given private process,
    deterministic per seed. *)

val additive :
  ?fresh_op:string -> seed:int -> Chorev_bpel.Process.t ->
  Chorev_change.Ops.t option
(** Insert a fresh send, add a pick arm, extend a switch — [None] when
    the process offers no site. *)

val subtractive :
  seed:int -> Chorev_bpel.Process.t -> Chorev_change.Ops.t option
(** Unroll a loop or delete a sequence child. *)
