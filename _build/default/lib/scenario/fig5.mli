(** The toy aFSAs of Fig. 5: party B mandates both [msg1] and [msg2];
    the intersection with party A (which only offers [msg2]) is empty
    under the annotated emptiness test. *)

val msg0 : string
val msg1 : string
val msg2 : string

val party_a : Chorev_afsa.Afsa.t
val party_b : Chorev_afsa.Afsa.t
val intersection : unit -> Chorev_afsa.Afsa.t
