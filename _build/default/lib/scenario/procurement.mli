(** The paper's running example (Sec. 2): buyer [B], accounting [A],
    logistics [L], with every changed variant of Secs. 5.1–5.3. *)

val buyer : string
val accounting : string
val logistics : string

val registry : Chorev_bpel.Types.registry

val buyer_process : Chorev_bpel.Process.t
(** Fig. 3. *)

val accounting_process : Chorev_bpel.Process.t
(** Fig. 2. *)

val logistics_process : Chorev_bpel.Process.t
(** Inferred from Fig. 1 and the accounting process. *)

val accounting_order2 : Chorev_bpel.Process.t
(** Fig. 9 — invariant additive change. *)

val accounting_cancel : Chorev_bpel.Process.t
(** Fig. 11 — variant additive change. *)

val accounting_once : Chorev_bpel.Process.t
(** Fig. 15 — variant subtractive change. *)

val buyer_with_cancel : Chorev_bpel.Process.t
(** Fig. 14 — buyer after additive propagation. *)

val buyer_once : Chorev_bpel.Process.t
(** Fig. 18 — buyer after subtractive propagation. *)

val parties : (string * Chorev_bpel.Process.t) list
(** The unchanged choreography of Fig. 1. *)
