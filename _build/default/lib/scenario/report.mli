(** The per-figure reproduction report: every figure and table of the
    paper re-derived, with the paper's claim and the measured outcome
    side by side (the rows of EXPERIMENTS.md). *)

type row = {
  id : string;
  what : string;
  paper : string;
  measured : string;
  ok : bool;
}

val all : unit -> row list
val pp_row : Format.formatter -> row -> unit

val print_all : unit -> bool
(** Prints every row plus a summary; [true] iff all reproduced. *)
