(** The two toy aFSAs of Fig. 5 and their intersection, used to
    illustrate annotated intersection and emptiness in Sec. 3.2.

    Party A accepts [B#A#msg0 · B#A#msg2]; its middle state implicitly
    requires [msg2] (only continuation). Party B accepts
    [B#A#msg0 · (B#A#msg1 | B#A#msg2)] and annotates the state after
    [msg0] with [B#A#msg1 AND B#A#msg2] — both are mandatory. The
    intersection lacks the mandatory [B#A#msg1] transition, hence is
    empty. *)

module Afsa = Chorev_afsa.Afsa
module F = Chorev_formula.Syntax

let msg0 = "B#A#msg0"
let msg1 = "B#A#msg1"
let msg2 = "B#A#msg2"

(** Left automaton of Fig. 5. The explicit [msg2] annotation on state 1
    is the "default annotation of party A" the paper mentions when
    forming the intersection annotation. *)
let party_a =
  Afsa.of_strings ~start:0 ~finals:[ 2 ]
    ~edges:[ (0, msg0, 1); (1, msg2, 2) ]
    ~ann:[ (1, F.var msg2) ]
    ()

(** Right automaton of Fig. 5, with the conjunctive mandatory
    annotation. *)
let party_b =
  Afsa.of_strings ~start:0 ~finals:[ 2; 3 ]
    ~edges:[ (0, msg0, 1); (1, msg1, 2); (1, msg2, 3) ]
    ~ann:[ (1, F.and_ (F.var msg1) (F.var msg2)) ]
    ()

(** The intersection shown on the right of Fig. 5 — empty under the
    annotated emptiness test. *)
let intersection () = Chorev_afsa.Ops.intersect party_a party_b
