lib/scenario/procurement.mli: Chorev_bpel
