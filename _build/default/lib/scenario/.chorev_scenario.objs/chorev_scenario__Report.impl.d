lib/scenario/report.ml: Chorev_afsa Chorev_bpel Chorev_choreography Chorev_formula Chorev_mapping Chorev_propagate Fig5 Fmt List Option Printf Procurement String
