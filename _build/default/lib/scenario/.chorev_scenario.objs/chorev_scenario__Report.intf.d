lib/scenario/report.mli: Format
