lib/scenario/fig5.mli: Chorev_afsa
