lib/scenario/procurement.ml: Activity Chorev_bpel Edit Process Types
