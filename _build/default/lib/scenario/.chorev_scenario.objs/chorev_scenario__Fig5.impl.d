lib/scenario/fig5.ml: Chorev_afsa Chorev_formula
