(** The paper's running example (Sec. 2): a procurement process within a
    virtual enterprise with a buyer [B], an accounting department [A]
    and a logistics department [L]. All processes and their changed
    variants (Figs. 2, 3, 9, 11, 14, 15, 18) are built here.

    Operation names follow the automata figures ([orderOp],
    [get_statusOp], …). All operations are asynchronous except the
    logistics [get_statusLOp] (Sec. 2). *)

open Chorev_bpel

let buyer = "B"
let accounting = "A"
let logistics = "L"

(* Port types, per Figs. 2 and 3. [order_2Op] and [cancelOp] belong to
   the changed variants (Figs. 9, 11) and are registered up front —
   registration is vocabulary, not behavior. *)
let registry =
  Types.registry
    [
      ( accounting,
        {
          Types.pt_name = "accBuyer";
          ops =
            [
              Types.async "orderOp";
              Types.async "order_2Op";
              Types.async "get_statusOp";
              Types.async "terminateOp";
            ];
        } );
      ( accounting,
        { Types.pt_name = "accLogistics"; ops = [ Types.async "deliver_confOp" ] }
      );
      ( buyer,
        {
          Types.pt_name = "buyer";
          ops =
            [
              Types.async "deliveryOp";
              Types.async "statusOp";
              Types.async "cancelOp";
            ];
        } );
      ( logistics,
        {
          Types.pt_name = "logistics";
          ops =
            [
              Types.async "deliverOp";
              Types.sync "get_statusLOp";
              Types.async "terminateLOp";
            ];
        } );
    ]

let link name partner = { Types.link_name = name; partner; my_role = name ^ "Role"; partner_role = partner ^ "Role" }

(* ------------------------------- Buyer ------------------------------ *)

(** Buyer private process (Fig. 3). Block structure: BPELProcess,
    Sequence:buyer process, While:tracking, Switch:termination?,
    Sequence:cond continue, Sequence:cond terminate — as in Table 1. *)
let buyer_process =
  let open Activity in
  Process.make ~name:"buyer" ~party:buyer
    ~links:[ link "accBuyer" accounting ]
    ~registry
    (seq "buyer process"
       [
         invoke ~partner:accounting ~op:"orderOp";
         receive ~partner:accounting ~op:"deliveryOp";
         while_ "tracking" ~cond:"1 = 1"
           (switch "termination?"
              [
                branch ~cond:"continue"
                  (seq "cond continue"
                     [
                       invoke ~partner:accounting ~op:"get_statusOp";
                       receive ~partner:accounting ~op:"statusOp";
                     ]);
                otherwise
                  (seq "cond terminate"
                     [ invoke ~partner:accounting ~op:"terminateOp"; Terminate ]);
              ]);
       ])

(* ---------------------------- Accounting ---------------------------- *)

(** Accounting private process (Fig. 2): approve and forward the order,
    confirm delivery, then serve parcel tracking in a non-terminating
    loop until the buyer terminates. *)
let accounting_process =
  let open Activity in
  Process.make ~name:"accounting" ~party:accounting
    ~links:[ link "accBuyer" buyer; link "logistics" logistics ]
    ~registry
    (seq "accounting"
       [
         receive ~partner:buyer ~op:"orderOp";
         invoke ~partner:logistics ~op:"deliverOp";
         receive ~partner:logistics ~op:"deliver_confOp";
         invoke ~partner:buyer ~op:"deliveryOp";
         while_ "parcel tracking" ~cond:"1 = 1"
           (pick "tracking choice"
              [
                on_message ~partner:buyer ~op:"get_statusOp"
                  (seq "handle status"
                     [
                       invoke ~partner:logistics ~op:"get_statusLOp";
                       invoke ~partner:buyer ~op:"statusOp";
                     ]);
                on_message ~partner:buyer ~op:"terminateOp"
                  (seq "handle terminate"
                     [ invoke ~partner:logistics ~op:"terminateLOp"; Terminate ]);
              ]);
       ])

(* ----------------------------- Logistics ---------------------------- *)

(** Logistics private process (not drawn in the paper; inferred from
    Fig. 1 and the accounting process): accept the delivery order,
    confirm receipt, then answer synchronous status requests until
    terminated. *)
let logistics_process =
  let open Activity in
  Process.make ~name:"logistics" ~party:logistics
    ~links:[ link "accLogistics" accounting ]
    ~registry
    (seq "logistics"
       [
         receive ~partner:accounting ~op:"deliverOp";
         invoke ~partner:accounting ~op:"deliver_confOp";
         while_ "status loop" ~cond:"1 = 1"
           (pick "serve"
              [
                on_message ~partner:accounting ~op:"get_statusLOp" Empty;
                on_message ~partner:accounting ~op:"terminateLOp"
                  (seq "handle terminateL" [ Terminate ]);
              ]);
       ])

(* --------------------------- Changed variants ----------------------- *)

(** Fig. 9 — invariant additive change: the accounting process offers an
    alternative order message format [order_2Op]; the initial receive
    becomes a pick over both formats. *)
let accounting_order2 =
  let body = Process.body accounting_process in
  match
    Edit.receive_to_pick ~path:[ 0 ] ~name:"order formats"
      ~arms:[ Activity.on_message ~partner:buyer ~op:"order_2Op" Activity.Empty ]
      body
  with
  | Ok b ->
      Process.with_name (Process.with_body accounting_process b)
        "accounting-order2"
  | Error e -> invalid_arg ("accounting_order2: " ^ e)

(** Fig. 11 — variant additive change: the accounting process may cancel
    an order (product out of stock) by sending [cancelOp] to the buyer
    instead of delivering. *)
let accounting_cancel =
  let open Activity in
  Process.make ~name:"accounting-cancel" ~party:accounting
    ~links:[ link "accBuyer" buyer; link "logistics" logistics ]
    ~registry
    (seq "accounting"
       [
         receive ~partner:buyer ~op:"orderOp";
         switch "credit check"
           [
             branch ~cond:{|creditStatus = "ok"|}
               (seq "cond deliver"
                  [
                    invoke ~partner:logistics ~op:"deliverOp";
                    receive ~partner:logistics ~op:"deliver_confOp";
                    invoke ~partner:buyer ~op:"deliveryOp";
                    while_ "parcel tracking" ~cond:"1 = 1"
                      (pick "tracking choice"
                         [
                           on_message ~partner:buyer ~op:"get_statusOp"
                             (seq "handle status"
                                [
                                  invoke ~partner:logistics ~op:"get_statusLOp";
                                  invoke ~partner:buyer ~op:"statusOp";
                                ]);
                           on_message ~partner:buyer ~op:"terminateOp"
                             (seq "handle terminate"
                                [
                                  invoke ~partner:logistics ~op:"terminateLOp";
                                  Terminate;
                                ]);
                         ]);
                  ]);
             otherwise
               (seq "cond cancel" [ invoke ~partner:buyer ~op:"cancelOp" ]);
           ];
       ])

(** Fig. 15 — variant subtractive change: parcel tracking is limited to
    at most one request; the loop is removed, both paths finish with the
    terminate exchange. (The paper's drawing also repeats the cancel
    branch of Fig. 11; its analysis in Sec. 5.3 isolates the tracking
    restriction, which is what we model.) *)
let accounting_once =
  let open Activity in
  Process.make ~name:"accounting-once" ~party:accounting
    ~links:[ link "accBuyer" buyer; link "logistics" logistics ]
    ~registry
    (seq "accounting"
       [
         receive ~partner:buyer ~op:"orderOp";
         invoke ~partner:logistics ~op:"deliverOp";
         receive ~partner:logistics ~op:"deliver_confOp";
         invoke ~partner:buyer ~op:"deliveryOp";
         pick "tracking once?"
           [
             on_message ~partner:buyer ~op:"get_statusOp"
               (seq "track once"
                  [
                    invoke ~partner:logistics ~op:"get_statusLOp";
                    invoke ~partner:buyer ~op:"statusOp";
                    receive ~partner:buyer ~op:"terminateOp";
                    invoke ~partner:logistics ~op:"terminateLOp";
                    Terminate;
                  ]);
             on_message ~partner:buyer ~op:"terminateOp"
               (seq "terminate now"
                  [ invoke ~partner:logistics ~op:"terminateLOp"; Terminate ]);
           ];
       ])

(** Fig. 14 — buyer after propagation of the additive cancel change: the
    [receive delivery] becomes a pick over [deliveryOp] and [cancelOp];
    a cancellation ends the process. *)
let buyer_with_cancel =
  let body = Process.body buyer_process in
  match
    Edit.receive_to_pick ~path:[ 1 ] ~name:"delivery or cancel"
      ~arms:
        [ Activity.on_message ~partner:accounting ~op:"cancelOp" Activity.Terminate ]
      body
  with
  | Ok b ->
      Process.with_name (Process.with_body buyer_process b) "buyer-cancel"
  | Error e -> invalid_arg ("buyer_with_cancel: " ^ e)

(** Fig. 18 — buyer after propagation of the subtractive change: the
    tracking loop is gone; track at most once, then terminate. *)
let buyer_once =
  let open Activity in
  Process.make ~name:"buyer-once" ~party:buyer
    ~links:[ link "accBuyer" accounting ]
    ~registry
    (seq "buyer process"
       [
         invoke ~partner:accounting ~op:"orderOp";
         receive ~partner:accounting ~op:"deliveryOp";
         switch "termination?"
           [
             branch ~cond:"continue"
               (seq "cond continue"
                  [
                    invoke ~partner:accounting ~op:"get_statusOp";
                    receive ~partner:accounting ~op:"statusOp";
                    invoke ~partner:accounting ~op:"terminateOp";
                    Terminate;
                  ]);
             otherwise
               (seq "cond terminate"
                  [ invoke ~partner:accounting ~op:"terminateOp"; Terminate ]);
           ];
       ])

(** All private processes of the unchanged choreography (Fig. 1). *)
let parties =
  [
    (buyer, buyer_process);
    (accounting, accounting_process);
    (logistics, logistics_process);
  ]
