(** First-send analysis for the annotation rule: per branch, the first
    message sent to each partner along its linear prefix (receives do
    not stop the walk — Fig. 12a; choice points and [terminate] do). *)

val first_sends :
  Chorev_bpel.Process.t -> Chorev_bpel.Activity.t -> Chorev_afsa.Label.t list

val choice_annotation :
  Chorev_bpel.Process.t ->
  Chorev_bpel.Activity.t list ->
  Chorev_formula.Syntax.t
(** Conjunction of every branch's first sends — the mandatory
    annotation of an internal choice (Fig. 6). *)
