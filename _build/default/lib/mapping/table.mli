(** The mapping table relating public-process states to BPEL blocks
    (Sec. 3.3, Table 1). A state is associated with the block that
    allocated it and every block whose compilation begins at it, in
    depth-first order; the first entry is the edit anchor. *)

type entry = { block : string; path : Chorev_bpel.Activity.path }

val equal_entry : entry -> entry -> bool
val compare_entry : entry -> entry -> int
val pp_entry : Format.formatter -> entry -> unit
val show_entry : entry -> string

type t

val empty : t
val add : t -> state:int -> entry -> t
val entries : t -> int -> entry list

val anchor : t -> int -> entry option
(** The first associated block — "the required modifications can be
    limited to the first block mentioned". *)

val states : t -> int list
val merge : t -> into:int -> from:int -> t
val restrict : t -> int list -> t
val renumber : t -> f:(int -> int) -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
