(** Skeleton synthesis — the inverse of {!Public_gen}: recover a
    private BPEL process template from a deterministic public process
    (picks for received alternatives, switches for sent ones,
    non-terminating whiles for cycles, the idiom of the paper's
    Figs. 2/3). The synthesized process regenerates a public process
    with the same plain language; annotations are re-derived from the
    recovered structure. States mixing sends and receives, and
    automata whose cycles do not pass through their loop entry, are
    rejected with [Error]. Worst-case exponential on automata with
    heavily shared acyclic suffixes (the output is a tree). *)

type error = string

val synthesize :
  ?name:string ->
  party:string ->
  Chorev_afsa.Afsa.t ->
  (Chorev_bpel.Process.t, error) result
