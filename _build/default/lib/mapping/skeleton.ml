(** Skeleton synthesis: the inverse of {!Public_gen} — derive a private
    BPEL process template from a public process.

    The paper's propagation pipeline ends with a process engineer
    editing the partner's private process (Sec. 5.2 ad 4); its
    companion work [16] composes new collaborations from public
    processes. Both need a conforming private-process *template* for a
    given public behaviour: this module produces one. Given a
    deterministic aFSA and the owning party, it recovers block
    structure:

    - a state whose outgoing labels are all *received* by the owner
      becomes a [pick];
    - all *sent* becomes a [switch] of [invoke]s;
    - single transitions chain into [sequence]s;
    - cycles become non-terminating [while] loops whose exiting
      branches end in [terminate] (exactly the idiom of the paper's
      Figs. 2 and 3);
    - a final state with continuations becomes a stop-or-continue
      [switch].

    The synthesized process regenerates a public process with the same
    plain language as the input ({!Public_gen} round-trip, tested);
    mandatory annotations are re-derived from the recovered structure
    and may strengthen ones absent in a hand-built input. *)

module Afsa = Chorev_afsa.Afsa
module Label = Chorev_afsa.Label
module Sym = Chorev_afsa.Sym
module ISet = Afsa.ISet
open Chorev_bpel

type error = string

(* Tarjan SCC; returns state -> scc id, and whether the scc is a real
   cycle (size > 1 or self-loop). *)
let sccs (a : Afsa.t) =
  let index = Hashtbl.create 16 in
  let low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let comp = Hashtbl.create 16 in
  let ncomp = ref 0 in
  let rec strong v =
    Hashtbl.replace index v !next;
    Hashtbl.replace low v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun (_, w) ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (Afsa.out_edges a v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let id = !ncomp in
      incr ncomp;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            Hashtbl.replace comp w id;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) (Afsa.states a);
  let cyclic = Hashtbl.create 16 in
  (* an scc is cyclic if it has more than one member or a self loop *)
  let members = Hashtbl.create 16 in
  Hashtbl.iter
    (fun v id ->
      Hashtbl.replace members id
        (v :: Option.value ~default:[] (Hashtbl.find_opt members id)))
    comp;
  Hashtbl.iter
    (fun id ms ->
      let is_cyclic =
        match ms with
        | [ v ] -> List.exists (fun (_, w) -> w = v) (Afsa.out_edges a v)
        | _ -> true
      in
      if is_cyclic then Hashtbl.replace cyclic id ())
    members;
  ((fun v -> Hashtbl.find comp v), fun id -> Hashtbl.mem cyclic id)

exception Unsupported of string

let synthesize ?(name = "synthesized") ~party (a : Afsa.t) :
    (Process.t, error) result =
  if Afsa.has_eps a then Error "skeleton: automaton has ε-transitions"
  else if not (Afsa.is_deterministic a) then
    Error "skeleton: automaton is nondeterministic (determinize first)"
  else if
    not (List.for_all (Label.involves party) (Afsa.alphabet a))
  then Error ("skeleton: alphabet has labels not involving " ^ party)
  else begin
    let comp, cyclic = sccs a in
    let fresh =
      let n = ref 0 in
      fun base ->
        incr n;
        Printf.sprintf "%s%d" base !n
    in
    (* activity for one edge label from the owner's perspective *)
    let act_of (l : Label.t) =
      if String.equal l.receiver party then
        (`Recv, Activity.receive ~partner:l.sender ~op:l.msg)
      else (`Send, Activity.invoke ~partner:l.receiver ~op:l.msg)
    in
    let seq_of = function
      | [] -> Activity.Empty
      | [ x ] -> x
      | xs -> Activity.seq (fresh "seq") xs
    in
    (* [chain q ~header]: activities from state q until the loop header
       is re-reached (→ iteration ends), a terminal state is reached
       (→ Terminate), or the walk continues past the SCC. [header] is
       [Some (h, scc)] inside the loop rooted at h. *)
    let rec chain q ~header ~depth : Activity.t list =
      if depth > 10_000 then raise (Unsupported "skeleton: automaton too deep");
      (match header with
      | Some (h, _) when q = h ->
          (* back at the loop header: end of this iteration *)
          [ Activity.Empty ]
      | _ -> chain_at q ~header ~depth)
    and chain_at q ~header ~depth =
      let entering_cycle =
        cyclic (comp q)
        && (match header with
           | Some (_, scc) -> comp q <> scc (* a different, nested loop *)
           | None -> true)
      in
      if entering_cycle then begin
        (* wrap the SCC in a non-terminating while; exits terminate or
           continue outside and never return, so they end iterations
           via Terminate/continuation inside branches *)
        let body =
          seq_of (body_at q ~header:(Some (q, comp q)) ~depth:(depth + 1))
        in
        [ Activity.while_ (fresh "loop") ~cond:"1 = 1" body ]
      end
      else body_at q ~header ~depth
    and body_at q ~header ~depth =
      let out = Afsa.out_edges a q in
      let final = Afsa.is_final a q in
      let continue_from (l, t) =
        let _, act = act_of l in
        let rest =
          match header with
          | Some (h, _) when t = h -> []
          | _ -> chain t ~header ~depth:(depth + 1)
        in
        (* a branch that ends at a terminal final state must terminate
           explicitly when we are inside a loop *)
        let ends_dead =
          Afsa.out_edges a t = [] && Afsa.is_final a t && header <> None
        in
        if ends_dead then [ act; Activity.Terminate ] else act :: rest
      in
      let edges =
        List.filter_map
          (fun (sym, t) ->
            match sym with Sym.Eps -> None | Sym.L l -> Some (l, t))
          out
      in
      match (edges, final) with
      | [], true -> if header <> None then [ Activity.Terminate ] else []
      | [], false -> raise (Unsupported "skeleton: dead non-final state")
      | [ e ], false -> continue_from e
      | _ ->
          let dirs =
            List.sort_uniq compare (List.map (fun (l, _) -> fst (act_of l)) edges)
          in
          let mixed = List.length dirs > 1 in
          if mixed then
            raise
              (Unsupported
                 "skeleton: state mixes sends and receives (not expressible \
                  as a single BPEL choice)")
          else begin
            let choice =
              match dirs with
              | [ `Recv ] ->
                  Activity.pick (fresh "pick")
                    (List.map
                       (fun ((l : Label.t), t) ->
                         let rest =
                           match header with
                           | Some (h, _) when t = h -> Activity.Empty
                           | _ ->
                               let c = chain t ~header ~depth:(depth + 1) in
                               let ends_dead =
                                 Afsa.out_edges a t = []
                                 && Afsa.is_final a t && header <> None
                               in
                               if ends_dead then Activity.Terminate
                               else seq_of c
                         in
                         Activity.on_message ~partner:l.sender ~op:l.msg rest)
                       edges)
              | _ ->
                  Activity.switch (fresh "switch")
                    (List.map
                       (fun ((l : Label.t), t) ->
                         Activity.branch
                           ~cond:(fresh "case")
                           (seq_of (continue_from (l, t))))
                       edges)
            in
            if final then
              (* accept-and-continue: stopping here is an option *)
              [
                Activity.switch (fresh "stop_or_go")
                  [
                    Activity.branch ~cond:"continue" choice;
                    Activity.branch ~cond:"otherwise"
                      (if header <> None then Activity.Terminate
                       else Activity.Empty);
                  ];
              ]
            else [ choice ]
          end
    in
    try
      let body =
        seq_of (chain (Afsa.start a) ~header:None ~depth:0)
      in
      (* registry: every operation under the party that owns it *)
      let ops_of p =
        Afsa.alphabet a
        |> List.filter_map (fun (l : Label.t) ->
               if String.equal l.receiver p || String.equal l.sender p then
                 Some (Types.async l.msg)
               else None)
        |> List.sort_uniq compare
      in
      let parties =
        Chorev_afsa.View.parties a |> List.sort_uniq String.compare
      in
      let registry =
        Types.registry
          (List.map
             (fun p -> (p, { Types.pt_name = p ^ "Port"; ops = ops_of p }))
             parties)
      in
      Ok
        (Process.make ~name ~party ~registry
           (Activity.seq (name ^ " process") [ body ]))
    with Unsupported msg -> Error msg
  end
