(** First-send analysis used by the annotation rule of public-process
    generation.

    At an internal choice (a [switch]), each alternative obligates the
    process to a set of sends: for every partner, the first message the
    branch will send to that partner along its *linear prefix* — the
    deterministic run of basic activities before the next structured
    choice point ([switch]/[pick]/[while]) or [flow]. Receives do not
    stop the walk (cf. Fig. 12a of the paper, where [deliveryOp] is
    mandatory although a [deliver_conf] receive precedes it); they are
    simply not obligations of this process.

    The conjunction of these labels over all branches is the state
    annotation (cf. Fig. 6: [terminateOp AND get_statusOp]). *)

module Label = Chorev_afsa.Label
open Chorev_bpel

(** Sends of the linear prefix of [act]: first message per partner, in
    traversal order. *)
let first_sends (p : Process.t) (act : Activity.t) : Label.t list =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  let record (l : Label.t) =
    (* only sends of this process, first per partner *)
    if String.equal l.sender (Process.party p) && not (Hashtbl.mem seen l.receiver)
    then begin
      Hashtbl.add seen l.receiver ();
      out := l :: !out
    end
  in
  let exception Stop in
  (* [walk] raises [Stop] at the first choice point or flow so that no
     activity *after* it in an enclosing sequence is inspected either. *)
  let rec walk act =
    match (act : Activity.t) with
    | Receive c -> List.iter record (Process.labels_of_comm p `Receive c)
    | Reply c -> List.iter record (Process.labels_of_comm p `Reply c)
    | Invoke c -> List.iter record (Process.labels_of_comm p `Invoke c)
    | Assign _ | Empty -> ()
    | Terminate -> raise Stop (* nothing after a terminate executes *)
    | Sequence (_, body) -> List.iter walk body
    | Scope (_, body) -> walk body
    | Switch _ | Pick _ | While _ | Flow _ -> raise Stop
  in
  (try walk act with Stop -> ());
  List.rev !out

(** The mandatory-annotation formula for an internal choice among
    [branches]: conjunction of every branch's first sends. [True] when
    nothing is obligated (e.g. all branches start with receives). *)
let choice_annotation (p : Process.t) (branches : Activity.t list) :
    Chorev_formula.Syntax.t =
  branches
  |> List.concat_map (fun b -> first_sends p b)
  |> List.map (fun l -> Chorev_formula.Syntax.var (Label.to_string l))
  |> Chorev_formula.Syntax.conj
