lib/mapping/table.pp.mli: Chorev_bpel Format
