lib/mapping/firsts.pp.mli: Chorev_afsa Chorev_bpel Chorev_formula
