lib/mapping/skeleton.pp.mli: Chorev_afsa Chorev_bpel
