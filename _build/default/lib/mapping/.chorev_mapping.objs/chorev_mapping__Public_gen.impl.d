lib/mapping/public_gen.pp.ml: Activity Chorev_afsa Chorev_bpel Chorev_formula Firsts Hashtbl List Map Process Queue Seq String Table
