lib/mapping/firsts.pp.ml: Activity Chorev_afsa Chorev_bpel Chorev_formula Hashtbl List Process String
