lib/mapping/public_gen.pp.mli: Chorev_afsa Chorev_bpel Table
