lib/mapping/table.pp.ml: Chorev_bpel Fmt Int List Map Option Ppx_deriving_runtime
