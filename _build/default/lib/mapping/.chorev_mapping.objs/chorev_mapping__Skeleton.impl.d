lib/mapping/skeleton.pp.ml: Activity Chorev_afsa Chorev_bpel Hashtbl List Option Printf Process String Types
