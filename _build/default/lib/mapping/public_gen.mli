(** Public-process generation (Sec. 3.3): compile a private process
    into its public aFSA and mapping table by depth-first traversal of
    the block structure. Internal choices over sends annotate their
    entry state with the conjunctive mandatory formula; picks are the
    partner's (optional) choice. States are numbered in BFS order from
    the start, as the paper's figures do (theirs are 1-based). *)

val generate :
  Chorev_bpel.Process.t -> Chorev_afsa.Afsa.t * Table.t

val public : Chorev_bpel.Process.t -> Chorev_afsa.Afsa.t
(** Just the aFSA. *)

val nonterminating_cond : string -> bool
(** Is a while condition the paper's non-terminating idiom ("1 = 1" or
    "true", whitespace- and case-insensitive)? *)
