(** The mapping table relating public-process states to the private
    process's BPEL blocks (Sec. 3.3, Table 1 of the paper).

    A state is associated with (a) the block during whose compilation
    it was allocated, and (b) every block whose compilation *begins* at
    it, in depth-first traversal order. "The required modifications can
    be limited to the first block mentioned due to the depth first
    traversal" — {!anchor} returns exactly that first block. *)

type entry = {
  block : string;  (** display name, e.g. ["While:tracking"] *)
  path : Chorev_bpel.Activity.path;  (** positional path of that block *)
}
[@@deriving eq, ord, show]

module IMap = Map.Make (Int)

type t = { assoc : entry list IMap.t }

let empty = { assoc = IMap.empty }

(** Append an entry for [state] (chronological order, deduplicated). *)
let add t ~state entry =
  let cur = Option.value ~default:[] (IMap.find_opt state t.assoc) in
  if List.exists (fun e -> equal_entry e entry) cur then t
  else { assoc = IMap.add state (cur @ [ entry ]) t.assoc }

let entries t state = Option.value ~default:[] (IMap.find_opt state t.assoc)

(** The edit anchor of a state: the first associated block. *)
let anchor t state =
  match entries t state with [] -> None | e :: _ -> Some e

let states t = List.map fst (IMap.bindings t.assoc)

(** Merge the associations of [from] into [into] (used when ε-elimination
    fuses states) — [into]'s entries first. *)
let merge t ~into ~from =
  List.fold_left (fun t e -> add t ~state:into e) t (entries t from)

(** Keep only the given states. *)
let restrict t keep =
  { assoc = IMap.filter (fun q _ -> List.mem q keep) t.assoc }

(** Renumber states through [f]; entries of states mapped to the same
    new id are concatenated in old-id order. *)
let renumber t ~f =
  IMap.fold
    (fun q es acc ->
      List.fold_left (fun acc e -> add acc ~state:(f q) e) acc es)
    t.assoc empty

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (q, es) ->
         Fmt.pf ppf "%d | %a" q
           (Fmt.list ~sep:(Fmt.any ", ") (fun ppf e -> Fmt.string ppf e.block))
           es))
    (IMap.bindings t.assoc)

let to_string t = Fmt.str "%a" pp t
