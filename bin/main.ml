(* The chorev command-line tool.

     chorev demo          — walk the paper's scenarios (§5.1–5.3)
     chorev check         — bilateral/choreography consistency of the
                            procurement example (or a scale family)
     chorev experiments   — print the per-figure reproduction report
     chorev dot           — export the paper's automata as Graphviz
     chorev xml           — emit the scenario processes as BPEL XML
     chorev run           — execute the choreography operationally *)

module C = Chorev
module P = C.Scenario.Procurement
open Cmdliner

let gen = C.Public_gen.public

(* --------------------------- observability -------------------------- *)

(* Every subcommand takes [--trace[=FILE]], [--metrics], [--profile]
   and [--jobs]. The setup runs as the first term argument, so it is
   evaluated (and the ambient sink installed) before the command body —
   the same idiom cmdliner uses for log-level setup. *)

let obs_setup trace metrics profile jobs =
  (match jobs with
  | Some n -> C.Parallel.Pool.set_default_size n
  | None -> ());
  if metrics || profile then C.Obs.Metrics.enabled := true;
  let trace_sink =
    match trace with
    | None -> None
    | Some "-" -> Some (C.Obs.Sink.pretty Fmt.stderr)
    | Some file ->
        let oc = open_out file in
        at_exit (fun () -> close_out_noerr oc);
        Some (C.Obs.Sink.jsonl oc)
  in
  let prof =
    if profile then begin
      let p = C.Obs.Profile.create () in
      Some (p, C.Obs.Profile.sink p)
    end
    else None
  in
  (match (trace_sink, prof) with
  | None, None -> ()
  | Some s, None -> C.Obs.set_sink s
  | None, Some (_, ps) -> C.Obs.set_sink ps
  | Some s, Some (_, ps) -> C.Obs.set_sink (C.Obs.Sink.tee s ps));
  at_exit (fun () ->
      (C.Obs.current_sink ()).C.Obs.Sink.flush ();
      (match prof with
      | Some (p, _) -> Fmt.epr "@.%a@." C.Obs.Profile.pp p
      | None -> ());
      if metrics || profile then Fmt.epr "@.%a@." C.Obs.Metrics.pp ())

let obs_term =
  let trace_arg =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Emit one trace span per pipeline step: pretty-printed to \
             stderr, or as JSON lines to $(docv) when a file is given.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Collect and print the counter/histogram table on exit.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print a per-phase wall-clock table (plus the counter table) \
             on exit.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Size of the domain pool used for per-pair consistency checks \
             and per-partner propagation (default 1, i.e. sequential; the \
             $(b,CHOREV_DOMAINS) environment variable sets the same \
             default). Results are identical for every value.")
  in
  Term.(const obs_setup $ trace_arg $ metrics_arg $ profile_arg $ jobs_arg)

(* ----------------------------- budgets ------------------------------ *)

(* [--op-fuel]/[--op-timeout]/[--round-fuel]/[--round-timeout] build a
   config updater applied to [Evolution.default]. *)
let budget_term =
  let op_fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "op-fuel" ] ~docv:"N"
          ~doc:
            "Fuel budget per algebra step (worklist iterations); a step \
             that runs out degrades per policy instead of completing \
             (DESIGN.md §9). Deterministic across $(b,--jobs) values.")
  in
  let op_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "op-timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock deadline per algebra step (not deterministic).")
  in
  let round_fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "round-fuel" ] ~docv:"N"
          ~doc:
            "Fuel budget for one whole partner pipeline; op budgets draw \
             from its remainder.")
  in
  let round_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "round-timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock deadline for one whole partner pipeline.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the fingerprint-keyed memoization and cross-round \
             reuse of DESIGN.md §10; results are identical either way, \
             so this exists for A/B timing and differential testing.")
  in
  let repair_flag =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Self-healing evolution: when a partner cannot be adapted and \
             its bilateral check fails, search for a small amendment of \
             the partner's process (guided by the shortest \
             counterexample witness) that restores consistency, instead \
             of reporting failure (DESIGN.md §14).")
  in
  let repair_fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "repair-fuel" ] ~docv:"N"
          ~doc:
            "Fuel budget for one amendment search (implies $(b,--repair)); \
             an exhausted search degrades to unrepairable. Deterministic \
             across $(b,--jobs) values.")
  in
  let make of_ ot rf rt nc rep rep_fuel
      (config : C.Choreography.Evolution.config) =
    let config =
      {
        config with
        op_budget = { C.Guard.Budget.fuel = of_; timeout_s = ot };
        round_budget = { C.Guard.Budget.fuel = rf; timeout_s = rt };
        cache = not nc;
      }
    in
    if rep || rep_fuel <> None then C.Config.with_repair ?fuel:rep_fuel config
    else config
  in
  Term.(
    const make $ op_fuel $ op_timeout $ round_fuel $ round_timeout $ no_cache
    $ repair_flag $ repair_fuel)

(* ---------------------------- validation ---------------------------- *)

(* Pre-flight [Model.validate] before pipeline work: warnings go to
   stderr, errors are fatal (exit 2). *)
let validate_or_fail t =
  match C.Choreography.Model.validate t with
  | Ok () -> true
  | Error issues ->
      let fatal = ref false in
      List.iter
        (fun i ->
          match C.Choreography.Model.issue_severity i with
          | `Error ->
              fatal := true;
              Fmt.epr "error: %a@." C.Choreography.Model.pp_issue i
          | `Warning -> Fmt.epr "warning: %a@." C.Choreography.Model.pp_issue i)
        issues;
      not !fatal

(* ------------------------------- demo ------------------------------ *)

let demo () scenario =
  let t = C.Choreography.Model.of_processes (List.map snd P.parties) in
  if not (validate_or_fail t) then 2
  else begin
  let evolve changed =
    match C.Choreography.Evolution.run t ~owner:"A" ~changed with
    | Ok rep -> Fmt.pr "%a@." C.Choreography.Evolution.pp_report rep
    | Error (`Unknown_party p) -> Fmt.epr "unknown party %s@." p
  in
  (match scenario with
  | `Invariant ->
      Fmt.pr "=== §5.1 Invariant additive change: order_2 format ===@.";
      evolve P.accounting_order2
  | `Cancel ->
      Fmt.pr "=== §5.2 Variant additive change: cancellation ===@.";
      evolve P.accounting_cancel
  | `Tracking ->
      Fmt.pr "=== §5.3 Variant subtractive change: tracking limit ===@.";
      evolve P.accounting_once
  | `All ->
      Fmt.pr "=== §5.1 Invariant additive change: order_2 format ===@.";
      evolve P.accounting_order2;
      Fmt.pr "@.=== §5.2 Variant additive change: cancellation ===@.";
      evolve P.accounting_cancel;
      Fmt.pr "@.=== §5.3 Variant subtractive change: tracking limit ===@.";
      evolve P.accounting_once);
  0
  end

let scenario_arg =
  let scenario_conv =
    Arg.enum
      [ ("all", `All); ("invariant", `Invariant); ("cancel", `Cancel);
        ("tracking", `Tracking) ]
  in
  Arg.(value & pos 0 scenario_conv `All & info [] ~docv:"SCENARIO")

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Walk the paper's evolution scenarios (Sec. 5)")
    Term.(const demo $ obs_term $ scenario_arg)

(* ------------------------------- check ----------------------------- *)

let check () () =
  let t = C.Choreography.Model.of_processes (List.map snd P.parties) in
  if not (validate_or_fail t) then 2
  else begin
  List.iter
    (fun v ->
      Fmt.pr "%a@." C.Choreography.Consistency.pp_verdict v;
      match v.C.Choreography.Consistency.witness with
      | Some w ->
          Fmt.pr "  conversation: %a@."
            (Fmt.list ~sep:(Fmt.any " → ") (fun ppf l ->
                 Fmt.string ppf (C.Label.to_string l)))
            w
      | None -> ())
    (C.Choreography.Consistency.check_all t);
  if C.Choreography.Consistency.consistent t then 0 else 1
  end

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check all bilateral consistencies of the procurement example")
    Term.(const check $ obs_term $ const ())

(* ---------------------------- experiments --------------------------- *)

let experiments () () = if C.Scenario.Report.print_all () then 0 else 1

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Reproduce every figure/table of the paper and report the outcome")
    Term.(const experiments $ obs_term $ const ())

(* -------------------------------- dot ------------------------------ *)

let dot () dir =
  let automata =
    [
      ("fig5_party_a", C.Scenario.Fig5.party_a);
      ("fig5_party_b", C.Scenario.Fig5.party_b);
      ("fig5_intersection", C.Scenario.Fig5.intersection ());
      ("fig6_buyer_public", gen P.buyer_process);
      ("fig7_accounting_public", gen P.accounting_process);
      ("fig8a_buyer_view", C.View.tau ~observer:"B" (gen P.accounting_process));
      ("fig8b_logistics_view", C.View.tau ~observer:"L" (gen P.accounting_process));
      ("fig10a_order2_view", C.View.tau ~observer:"B" (gen P.accounting_order2));
      ("fig12a_cancel_view", C.View.tau ~observer:"B" (gen P.accounting_cancel));
      ( "fig13a_difference",
        C.Minimize.minimize
          (C.Ops.difference
             (C.View.tau ~observer:"B" (gen P.accounting_cancel))
             (gen P.buyer_process)) );
      ( "fig13b_new_buyer_public",
        C.Minimize.minimize
          (C.Ops.union
             (C.Ops.difference
                (C.View.tau ~observer:"B" (gen P.accounting_cancel))
                (gen P.buyer_process))
             (gen P.buyer_process)) );
      ("fig14_buyer_public", gen P.buyer_with_cancel);
      ("fig16a_once_view", C.View.tau ~observer:"B" (gen P.accounting_once));
      ("fig18_buyer_once_public", gen P.buyer_once);
    ]
  in
  C.Journal.Dir.mkdir_p dir;
  List.iter
    (fun (name, a) ->
      let path = Filename.concat dir (name ^ ".dot") in
      C.Dot.to_file ~name ~path a;
      Fmt.pr "wrote %s@." path)
    automata;
  0

let dir_arg =
  Arg.(value & opt string "dot" & info [ "o"; "out" ] ~docv:"DIR"
       ~doc:"Output directory for .dot files")

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the paper's automata as Graphviz files")
    Term.(const dot $ obs_term $ dir_arg)

(* -------------------------------- xml ------------------------------ *)

let xml () () =
  List.iter
    (fun p ->
      Fmt.pr "<!-- %s -->@.%s@." (C.Bpel.Process.name p) (C.Bpel.Pp.to_xml p))
    [ P.buyer_process; P.accounting_process; P.logistics_process ];
  0

let xml_cmd =
  Cmd.v
    (Cmd.info "xml" ~doc:"Emit the scenario private processes as BPEL XML")
    Term.(const xml $ obs_term $ const ())

(* -------------------------------- run ------------------------------ *)

let run () seed =
  let sys =
    C.Runtime.Exec.make
      (List.map (fun (p, proc) -> (p, gen proc)) P.parties)
  in
  let r = C.Runtime.Exec.random_run ~seed sys in
  List.iter (fun l -> Fmt.pr "%s@." (C.Label.to_string l)) r.C.Runtime.Exec.trace;
  Fmt.pr "outcome: %s@."
    (match r.C.Runtime.Exec.outcome with
    | C.Runtime.Exec.Completed -> "completed"
    | C.Runtime.Exec.Deadlock -> "deadlock"
    | C.Runtime.Exec.Running -> "step budget exhausted");
  let e = C.Runtime.Exec.explore sys in
  Fmt.pr "state space: %d configurations, %d deadlocks, completions %d@."
    e.C.Runtime.Exec.configurations
    (List.length e.C.Runtime.Exec.deadlocks)
    e.C.Runtime.Exec.completions;
  0

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Execute the procurement choreography operationally")
    Term.(const run $ obs_term $ seed_arg)

(* -------------------------------- sim ------------------------------ *)

let sim_scenario = function
  | `Invariant -> P.accounting_order2
  | `Cancel -> P.accounting_cancel
  | `Tracking -> P.accounting_once

(* The common tail of a healed (or reverted) run, printed identically
   by the live path and by [chorev resume] after a kill-during-rollback
   — the byte-identity contract of the repair journal. *)
let print_heal_tail m =
  Fmt.pr "agreed: %b@." (C.Choreography.Consistency.consistent m);
  Fmt.pr "digest: %s@." (Digest.to_hex (C.Choreography.Model.fingerprint m))

(* [chorev sim --inject-bad-changes]: a seeded rogue change instead of
   a Sec. 5 scenario change. Soak mode checks the never-half-applied
   invariant over many seeds; single-run mode can journal the rollback
   and simulate a crash in the middle of it. *)
let sim_inject t ~profile ~seed ~soak ~inject_at ~adapt ~rollback_journal
    ~crash_during_rollback max_ticks =
  match soak with
  | Some runs ->
      let checks =
        C.Sim.Soak.run_inject ~runs ~inject_at ~profile t ~owner:"A"
      in
      let failures =
        List.filter (fun c -> not (C.Sim.Soak.inject_ok c)) checks
      in
      let repaired =
        List.length
          (List.filter
             (fun c -> c.C.Sim.Soak.i_repairs > 0 && c.C.Sim.Soak.i_cone = 0)
             checks)
      in
      let rolled =
        List.length (List.filter (fun c -> c.C.Sim.Soak.i_cone > 0) checks)
      in
      Fmt.pr "%d injected runs: %d repaired, %d rolled back, %d failures@."
        (List.length checks) repaired rolled (List.length failures);
      List.iter
        (fun c -> Fmt.pr "  FAIL %a@." C.Sim.Soak.pp_inject_check c)
        failures;
      if failures = [] then 0 else 1
  | None -> (
      if crash_during_rollback <> None && rollback_journal = None then begin
        Fmt.epr "--crash-during-rollback requires --rollback-journal@.";
        2
      end
      else
        let profile = C.Sim.Fault.with_inject ~at:inject_at ~seed profile in
        let changed = C.Choreography.Model.private_ t "A" in
        match
          C.Sim.run ~adapt ~profile ~seed ?max_ticks ~trace:false
            ~rollback:true ?rollback_journal
            ?crash_during_rollback:crash_during_rollback t ~owner:"A" ~changed
        with
        | exception C.Repair.Rollback.Simulated_crash k ->
            Fmt.epr "simulated crash after %d rollback restore(s)@." k;
            3
        | r ->
            Fmt.epr "profile: %a@." C.Sim.Fault.pp profile;
            Fmt.epr "%a@." C.Sim.pp_stats r.C.Sim.stats;
            (match (r.C.Sim.injected_at, r.C.Sim.rolled_back) with
            | Some at, (_ :: _ as cone) ->
                Fmt.pr "%s" (C.Sim.rollback_prelude ~injected_at:at ~cone);
                print_heal_tail r.C.Sim.final
            | Some _, [] ->
                Fmt.pr "repaired: %d amendment(s)@." r.C.Sim.repairs;
                print_heal_tail r.C.Sim.final
            | None, _ -> Fmt.pr "injection skipped (no insertion point)@.");
            if r.C.Sim.agreed then 0 else 1)

let sim () scenario fault party seed soak record max_ticks inject inject_at
    no_adapt rollback_journal crash_during_rollback =
  let t = C.Choreography.Model.of_processes (List.map snd P.parties) in
  if not (validate_or_fail t) then 2
  else
  let changed = sim_scenario scenario in
  match C.Sim.Fault.of_name ~party fault with
  | Error e ->
      Fmt.epr "%s@." e;
      2
  | Ok profile when inject ->
      sim_inject t ~profile ~seed ~soak ~inject_at ~adapt:(not no_adapt)
        ~rollback_journal ~crash_during_rollback max_ticks
  | Ok profile -> (
      match soak with
      | Some seeds ->
          let checks =
            C.Sim.Soak.run
              ~seeds:(List.init seeds Fun.id)
              ?max_ticks t ~owner:"A" ~changed
          in
          let s = C.Sim.Soak.summarize checks in
          Fmt.pr "%a@." C.Sim.Soak.pp_summary s;
          if C.Sim.Soak.all_ok checks then 0 else 1
      | None ->
          let r =
            C.Sim.run ~profile ~seed ?max_ticks ~trace:(record <> None) t
              ~owner:"A" ~changed
          in
          let oracle = C.Choreography.Protocol.run t ~owner:"A" ~changed in
          (match record with
          | Some file ->
              Out_channel.with_open_text file (fun oc ->
                  Out_channel.output_string oc r.C.Sim.trace);
              Fmt.pr "wrote %s@." file
          | None -> ());
          Fmt.pr "profile: %a@." C.Sim.Fault.pp profile;
          Fmt.pr "%a@." C.Sim.pp_stats r.C.Sim.stats;
          Fmt.pr "converged: %b  agreed: %b (oracle: %b)  final matches \
                  oracle: %b@."
            r.C.Sim.converged r.C.Sim.agreed oracle.C.Choreography.Protocol.agreed
            (C.Sim.Soak.models_match r.C.Sim.final
               oracle.C.Choreography.Protocol.final);
          if
            r.C.Sim.converged
            && r.C.Sim.agreed = oracle.C.Choreography.Protocol.agreed
            && C.Sim.Soak.models_match r.C.Sim.final
                 oracle.C.Choreography.Protocol.final
          then 0
          else 1)

let scenario_sim_arg =
  let scenario_conv =
    Arg.enum
      [ ("invariant", `Invariant); ("cancel", `Cancel); ("tracking", `Tracking) ]
  in
  Arg.(
    value & pos 0 scenario_conv `Cancel
    & info [] ~docv:"SCENARIO"
        ~doc:
          "Which Sec. 5 change party A announces: $(b,invariant), \
           $(b,cancel) (default) or $(b,tracking).")

let sim_cmd =
  let fault_arg =
    Arg.(
      value
      & opt string "chaos"
      & info [ "fault" ] ~docv:"PROFILE"
          ~doc:
            (Printf.sprintf
               "Fault profile for the simulated transport; one of %s."
               (String.concat ", " C.Sim.Fault.names)))
  in
  let party_arg =
    Arg.(
      value & opt string "B"
      & info [ "party" ] ~docv:"PARTY"
          ~doc:
            "Party isolated/crashed by the $(b,partitioned) and \
             $(b,crashy) profiles.")
  in
  let soak_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "soak" ] ~docv:"N"
          ~doc:
            "Soak mode: run seeds 0..N-1 across the stock \
             lossy/jittery/chaos profiles (fanned over the domain pool, \
             see $(b,--jobs)) and check every run against the \
             synchronous oracle. Exit 1 on any mismatch.")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Write the run's deterministic JSONL event trace to $(docv) \
             — rerunning with the same seed and profile reproduces it \
             byte for byte.")
  in
  let max_ticks_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-ticks" ] ~docv:"T"
          ~doc:"Abort (converged: false) after virtual time $(docv).")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject-bad-changes" ]
          ~doc:
            "Instead of a Sec. 5 scenario change, have party A apply a \
             seeded rogue change mid-run (a message type no partner \
             knows) with rollback armed: the run must end repaired or \
             causally reverted, never half-applied. With $(b,--soak N) \
             this invariant is checked over N seeds (cycling \
             no-adapt/repair/fuel-starved classes).")
  in
  let inject_at_arg =
    Arg.(
      value & opt int 10
      & info [ "inject-at" ] ~docv:"T"
          ~doc:"Virtual tick of the bad-change injection (default 10).")
  in
  let no_adapt_arg =
    Arg.(
      value & flag
      & info [ "no-adapt" ]
          ~doc:
            "Partners nack without adapting — with \
             $(b,--inject-bad-changes) this forces the rollback exit.")
  in
  let rollback_journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rollback-journal" ] ~docv:"DIR"
          ~doc:
            "Journal the causal rollback into $(docv) (snapshots + one \
             fsynced record per restored party), so a kill in the middle \
             finishes with $(b,chorev resume) $(docv) — with stdout \
             byte-identical to the uninterrupted run.")
  in
  let crash_during_rollback_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-during-rollback" ] ~docv:"K"
          ~doc:
            "Test hook: abort (exit 3) right after committing the \
             $(docv)-th restore to the rollback journal.")
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Simulate the decentralized evolution protocol (Sec. 6) over a \
          faulty network: seeded discrete-event execution with message \
          loss, duplication, delay, partitions and crashes, checked \
          against the synchronous oracle")
    Term.(
      const sim $ obs_term $ scenario_sim_arg $ fault_arg $ party_arg
      $ seed_arg $ soak_arg $ record_arg $ max_ticks_arg $ inject_arg
      $ inject_at_arg $ no_adapt_arg $ rollback_journal_arg
      $ crash_during_rollback_arg)

(* ------------------------------- global ---------------------------- *)

let global () () =
  let t = C.Choreography.Model.of_processes (List.map snd P.parties) in
  if not (validate_or_fail t) then 2
  else begin
  Fmt.pr "=== original choreography ===@.%a@.@."
    C.Choreography.Global.pp_diagnosis
    (C.Choreography.Global.diagnose t);
  match
    C.Choreography.Evolution.run t ~owner:"A" ~changed:P.accounting_cancel
  with
  | Error (`Unknown_party p) ->
      Fmt.epr "unknown party %s@." p;
      1
  | Ok rep ->
      Fmt.pr
        "=== after the §5.2 cancel change (propagated, all pairs consistent) \
         ===@.%a@."
        C.Choreography.Global.pp_diagnosis
        (C.Choreography.Global.diagnose
           rep.C.Choreography.Evolution.choreography);
      0
  end

let global_cmd =
  Cmd.v
    (Cmd.info "global"
       ~doc:
         "Global (multi-lateral) diagnosis: conversation automaton, global \
          consistency, deadlock traces")
    Term.(const global $ obs_term $ const ())

(* ----------------------------- synthesize -------------------------- *)

let synth () party =
  let pub = gen P.accounting_process in
  let view = C.View.tau ~observer:party pub in
  match C.Skeleton.synthesize ~name:(party ^ "-stub") ~party view with
  | Ok p ->
      Fmt.pr "%s@." (C.Bpel.Pp.to_string p);
      Fmt.pr
        "(consistent with the accounting public process: %b)@."
        (C.Consistency.consistent (gen p) view);
      0
  | Error e ->
      Fmt.epr "synthesis failed: %s@." e;
      1

let party_arg =
  Arg.(value & pos 0 string "B" & info [] ~docv:"PARTY"
       ~doc:"Party to synthesize a stub for (its view of the accounting \
             process is used)")

let synth_cmd =
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize a private-process template from a public process")
    Term.(const synth $ obs_term $ party_arg)

(* ------------------------------ evolve ----------------------------- *)

let evolve_run () scenario journal crash_after budgets =
  let t = C.Choreography.Model.of_processes (List.map snd P.parties) in
  if not (validate_or_fail t) then 2
  else
    let config = budgets C.Choreography.Evolution.default in
    let changed = sim_scenario scenario in
    match journal with
    | None ->
        if crash_after <> None then begin
          Fmt.epr "--crash-after requires --journal@.";
          2
        end
        else (
          let cache =
            if config.C.Choreography.Evolution.cache then
              Some (C.Choreography.Evolution.Cache.create ())
            else None
          in
          match
            C.Choreography.Evolution.run ~config ?cache t ~owner:"A" ~changed
          with
          | Ok rep ->
              Fmt.pr "%a@." C.Choreography.Evolution.pp_report rep;
              if rep.C.Choreography.Evolution.consistent then 0 else 1
          | Error (`Unknown_party p) ->
              Fmt.epr "unknown party %s@." p;
              2)
    | Some dir -> (
        match
          match C.Journal.Dir.validate_root (Filename.dirname dir) with
          | Error e -> Error e
          | Ok () ->
              C.Journal.Evolve.run ~config ?crash_after ~dir t ~owner:"A"
                ~changed
        with
        | Ok o ->
            Fmt.pr "%a@." C.Journal.Evolve.pp_outcome o;
            if o.C.Journal.Evolve.consistent then 0 else 1
        | Error e ->
            Fmt.epr "%s@." e;
            2
        | exception C.Journal.Evolve.Simulated_crash k ->
            Fmt.epr "simulated crash after round %d@." k;
            3)

let evolve_cmd =
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Journal the run into $(docv): snapshot the choreography, \
             then commit one checksummed record per round, so a killed \
             run finishes with $(b,chorev resume) $(docv) — with output \
             byte-identical to the uninterrupted run.")
  in
  let crash_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~docv:"K"
          ~doc:
            "Test hook: abort (exit 3) right after committing round \
             $(docv) to the journal, as a hard kill at that point would.")
  in
  Cmd.v
    (Cmd.info "evolve"
       ~doc:
         "Evolve the procurement choreography through a Sec. 5 change, \
          optionally journaled ($(b,--journal)) for crash-safe resume and \
          bounded by fuel/deadline budgets ($(b,--op-fuel), ...)")
    Term.(
      const evolve_run $ obs_term $ scenario_sim_arg $ journal_arg
      $ crash_after_arg $ budget_term)

(* ------------------------------ resume ----------------------------- *)

let resume_run () dir budgets =
  if C.Repair.Rollback.journal_exists ~dir then begin
    (* An interrupted causal rollback: finish the missing restores
       (journalling them), rebuild the final model from the state
       snapshots overlaid with the pre-change ones, and print exactly
       what the uninterrupted run printed. *)
    let module R = C.Repair.Rollback in
    match R.resume ~dir ~restore:(fun ~party:_ ~pre:_ -> ()) with
    | Error e ->
        Fmt.epr "%s@." e;
        2
    | Ok l -> (
        Fmt.epr "resumed rollback of %d part(ies) from %s@."
          (List.length l.R.l_meta.R.parties)
          dir;
        match
          List.map
            (fun (party, sexp) ->
              let sexp =
                match List.assoc_opt party l.R.l_pre with
                | Some s -> s
                | None -> sexp
              in
              match C.Bpel.Sexp.process_of_string sexp with
              | Ok p -> p
              | Error e -> failwith (party ^ ": " ^ e))
            l.R.l_state
        with
        | procs ->
            let m = C.Choreography.Model.of_processes procs in
            print_string l.R.l_meta.R.prelude;
            print_heal_tail m;
            0
        | exception Failure e ->
            Fmt.epr "corrupt rollback snapshot: %s@." e;
            2)
  end
  else if C.Migrate.Engine.is_journal dir then
    (* A migration journal (migrate-plan.json present) — finish the
       batched migration instead of an evolution run. *)
    match C.Migrate.Engine.resume ~dir () with
    | Ok { C.Migrate.Engine.report; replayed } ->
        Fmt.epr "replayed %d batch(es) from %s@." replayed dir;
        Fmt.pr "%a@." C.Migrate.Engine.pp_report report;
        0
    | Error e ->
        Fmt.epr "%s@." e;
        2
  else
    let config = budgets C.Choreography.Evolution.default in
    match C.Journal.Evolve.resume ~config ~dir () with
    | Ok o ->
        Fmt.epr "replayed %d round(s) from %s@." o.C.Journal.Evolve.replayed
          dir;
        Fmt.pr "%a@." C.Journal.Evolve.pp_outcome o;
        if o.C.Journal.Evolve.consistent then 0 else 1
    | Error e ->
        Fmt.epr "%s@." e;
        2

let resume_cmd =
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Finish a journaled $(b,chorev evolve) or $(b,chorev migrate) \
          run: replay the committed rounds (or batches) from the \
          journal, run the rest live, and print the same output the \
          uninterrupted run would have printed (the replay note goes to \
          stderr)")
    Term.(
      const resume_run $ obs_term
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"DIR" ~doc:"Journal directory")
      $ budget_term)

(* ------------------------------ migrate ---------------------------- *)

(* chorev migrate — push a large seeded instance population through a
   schema change in budgeted batches (DESIGN.md §13). Stdout carries
   only the deterministic report; timing goes to stderr. *)

let migrate_plan scenario ~instances ~seed ~max_len ~batch ~batch_fuel ~memo =
  let pop version count seed prefix =
    { C.Migrate.Population.version; count; seed; max_len; prefix }
  in
  let publics, target, pops =
    match scenario with
    | `Cancel ->
        (* v1 = the Fig. 6 buyer public; target adds the cancel branch
           (Fig. 14) — every trace replays, the whole population
           migrates. *)
        ( [ gen P.buyer_process ],
          gen P.buyer_with_cancel,
          [ pop 1 instances seed "i-" ] )
    | `Tracking ->
        (* Two live versions (plain and with-cancel), migrating onto
           the restricted buyer_once public — a mixed population of
           migratable / finish-on-old instances. *)
        let half = instances / 2 in
        ( [ gen P.buyer_process; gen P.buyer_with_cancel ],
          gen P.buyer_once,
          [ pop 1 half seed "a-"; pop 2 (instances - half) (seed + 1_000_000) "b-" ] )
  in
  {
    C.Migrate.Engine.publics;
    target;
    pops;
    batch_size = batch;
    batch_fuel;
    memo_capacity = memo;
  }

let migrate_run () scenario instances batch seed max_len batch_fuel memo
    journal crash_after =
  let plan =
    migrate_plan scenario ~instances ~seed ~max_len ~batch ~batch_fuel ~memo
  in
  let t0 = Unix.gettimeofday () in
  let finish (rep : C.Migrate.Engine.report) =
    let dt = Unix.gettimeofday () -. t0 in
    Fmt.pr "%a@." C.Migrate.Engine.pp_report rep;
    Fmt.epr "%d instances in %.2fs (%.0f instances/s)@." rep.total dt
      (float_of_int rep.total /. Float.max dt 1e-9);
    0
  in
  match journal with
  | None ->
      if crash_after <> None then begin
        Fmt.epr "--crash-after requires --journal@.";
        2
      end
      else
        let vs = C.Migrate.Engine.build_plan plan in
        let rep =
          C.Migrate.Engine.run
            ~options:(C.Migrate.Engine.options_of_plan plan)
            vs plan.C.Migrate.Engine.target
        in
        finish rep
  | Some dir -> (
      match C.Journal.Dir.validate_root (Filename.dirname dir) with
      | Error e ->
          Fmt.epr "%s@." e;
          2
      | Ok () -> (
          match C.Migrate.Engine.run_journaled ?crash_after ~dir plan with
          | Ok rep -> finish rep
          | Error e ->
              Fmt.epr "%s@." e;
              2
          | exception C.Migrate.Engine.Simulated_crash k ->
              Fmt.epr "simulated crash after batch %d@." k;
              3))

let migrate_cmd =
  let scenario_arg =
    let scen_conv =
      Arg.enum [ ("tracking", `Tracking); ("cancel", `Cancel) ]
    in
    Arg.(
      value & pos 0 scen_conv `Tracking
      & info [] ~docv:"SCENARIO"
          ~doc:
            "$(b,tracking) (two live versions onto the restricted \
             buyer_once public — mixed verdicts) or $(b,cancel) (one \
             version onto the with-cancel public — everything migrates)")
  in
  let instances_arg =
    Arg.(
      value & opt int 100_000
      & info [ "instances" ] ~docv:"N" ~doc:"Population size")
  in
  let batch_arg =
    Arg.(
      value & opt int 1024
      & info [ "batch" ] ~docv:"N" ~doc:"Instances per batch")
  in
  let seed_arg =
    Arg.(
      value & opt int 17
      & info [ "seed" ] ~docv:"SEED" ~doc:"Population sampling seed")
  in
  let max_len_arg =
    Arg.(
      value & opt int 12
      & info [ "max-len" ] ~docv:"N" ~doc:"Maximum sampled trace length")
  in
  let batch_fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch-fuel" ] ~docv:"FUEL"
          ~doc:
            "Fuel bound per fresh verdict and per batch total; a batch \
             that trips it is deferred whole (left in place), never \
             half-migrated")
  in
  let memo_arg =
    Arg.(
      value & opt int 65_536
      & info [ "memo-capacity" ] ~docv:"N"
          ~doc:"Verdict memo (LRU) capacity")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Journal the migration into $(docv): persist the plan, then \
             commit one checksummed record per batch, so a killed run \
             finishes with $(b,chorev resume) $(docv) — with output \
             byte-identical to the uninterrupted run")
  in
  let crash_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~docv:"K"
          ~doc:
            "Test hook: abort (exit 3) right after committing batch \
             $(docv) to the journal, as a hard kill at that point would")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Migrate a large seeded instance population through a schema \
          change in budgeted batches: compliance verdicts fan out over \
          the domain pool, repeated traces hit a verdict memo, \
          over-budget batches defer whole, and $(b,--journal) makes the \
          run crash-safe ($(b,chorev resume))")
    Term.(
      const migrate_run $ obs_term $ scenario_arg $ instances_arg $ batch_arg
      $ seed_arg $ max_len_arg $ batch_fuel_arg $ memo_arg $ journal_arg
      $ crash_after_arg)

(* ------------------------- file-based commands --------------------- *)

let read_file path = In_channel.with_open_text path In_channel.input_all

let load_process path =
  match C.Bpel.Sexp.process_of_string (read_file path) with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

(* chorev public FILE — derive and print the public process + table *)
let public_cmd_run () path dot_out =
  match load_process path with
  | Error e ->
      Fmt.epr "%s@." e;
      1
  | Ok p ->
      let pub, table = C.Public_gen.generate p in
      Fmt.pr "%s@." (C.Afsa.Pp.to_string ~abbrev:true pub);
      Fmt.pr "mapping table:@.%s@." (C.Table.to_string table);
      (match dot_out with
      | Some out ->
          C.Dot.to_file ~name:(C.Bpel.Process.name p) ~path:out pub;
          Fmt.pr "wrote %s@." out
      | None -> ());
      0

let file_arg n doc = Arg.(required & pos n (some file) None & info [] ~docv:"FILE" ~doc)

let dot_out_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"OUT"
       ~doc:"Also write the automaton as Graphviz")

let public_cmd =
  Cmd.v
    (Cmd.info "public"
       ~doc:
         "Derive the public process (and mapping table) of a private \
          process stored as an s-expression")
    Term.(const public_cmd_run $ obs_term $ file_arg 0 "private process (.sexp)" $ dot_out_arg)

(* chorev consistent FILE1 FILE2 — bilateral consistency of two private
   processes *)
let consistent_cmd_run () p1 p2 =
  match (load_process p1, load_process p2) with
  | Error e, _ | _, Error e ->
      Fmt.epr "%s@." e;
      2
  | Ok a, Ok b ->
      let pa = C.Public_gen.public a and pb = C.Public_gen.public b in
      let va = C.View.tau ~observer:(C.Bpel.Process.party b) pa in
      let vb = C.View.tau ~observer:(C.Bpel.Process.party a) pb in
      let r = C.Consistency.check va vb in
      Fmt.pr "%s ↔ %s: %s@." (C.Bpel.Process.name a) (C.Bpel.Process.name b)
        (if r.C.Consistency.consistent then "consistent" else "INCONSISTENT");
      (match r.C.Consistency.witness with
      | Some w ->
          Fmt.pr "conversation: %a@."
            (Fmt.list ~sep:(Fmt.any " → ") (fun ppf l ->
                 Fmt.string ppf (C.Label.to_string l)))
            w
      | None -> ());
      if r.C.Consistency.consistent then 0 else 1

let consistent_cmd =
  Cmd.v
    (Cmd.info "consistent"
       ~doc:
         "Check bilateral consistency of two private processes stored as \
          s-expressions (exit code 1 when inconsistent)")
    Term.(
      const consistent_cmd_run
      $ obs_term
      $ file_arg 0 "first private process (.sexp)"
      $ Arg.(
          required
          & pos 1 (some file) None
          & info [] ~docv:"FILE2" ~doc:"second private process (.sexp)"))

(* chorev save — write the scenario processes as .sexp files, so the
   file-based commands have inputs to start from *)
let save_cmd_run () dir =
  C.Journal.Dir.mkdir_p dir;
  List.iter
    (fun p ->
      let path = Filename.concat dir (C.Bpel.Process.name p ^ ".sexp") in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (C.Bpel.Sexp.process_to_string p));
      Fmt.pr "wrote %s@." path)
    [
      P.buyer_process; P.accounting_process; P.logistics_process;
      P.accounting_cancel; P.accounting_once; P.buyer_with_cancel;
      P.buyer_once;
    ];
  0

let save_cmd =
  Cmd.v
    (Cmd.info "save"
       ~doc:"Write the paper's scenario processes as .sexp files")
    Term.(
      const save_cmd_run
      $ obs_term
      $ Arg.(
          value & opt string "processes"
          & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory"))

(* ------------------------------ serve ------------------------------ *)

(* chorev serve — the multi-tenant evolution service (DESIGN.md §11).
   Default is pipe mode: newline-delimited JSON requests on stdin, one
   response line each on stdout. --gen-script / --oracle / --replay are
   the deterministic workload tools behind the CI smoke diff and the
   scale_serve bench rows. *)
let serve_run () shards queue batch headroom journal_root mode tenants requests
    seed =
  let options =
    {
      C.Serve.Server.default_options with
      shards;
      queue_capacity = queue;
      batch;
      headroom;
      journal_root;
    }
  in
  match mode with
  | `Gen_script ->
      List.iter print_endline
        (C.Serve.Driver.gen_script ~tenants ~requests ~seed ());
      0
  | `Oracle ->
      let lines = In_channel.input_lines stdin in
      List.iter print_endline (C.Serve.Driver.oracle lines);
      0
  | `Replay file ->
      let lines = In_channel.with_open_text file In_channel.input_lines in
      let report = C.Serve.Driver.replay ~options lines in
      Fmt.pr "%a@." C.Serve.Driver.pp_report report;
      if report.C.Serve.Driver.errors > 0 then 1 else 0
  | `Pipe ->
      let server = C.Serve.Server.create ~options () in
      (match C.Serve.Server.recovered server with
      | 0 -> ()
      | n -> Fmt.epr "recovered %d tenant(s) from %s@." n
               (Option.value ~default:"" journal_root));
      let served = C.Serve.Server.run_pipe server stdin stdout in
      Fmt.epr "served %d request(s)@." served;
      0

let serve_cmd =
  let shards_arg =
    Arg.(
      value & opt int C.Serve.Server.default_options.C.Serve.Server.shards
      & info [ "shards" ] ~docv:"N" ~doc:"Tenant-store hash shards")
  in
  let queue_arg =
    Arg.(
      value
      & opt int C.Serve.Server.default_options.C.Serve.Server.queue_capacity
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admissions per scheduler cycle; requests past it are shed \
             with an $(i,overloaded) response")
  in
  let batch_arg =
    Arg.(
      value & opt int C.Serve.Server.default_options.C.Serve.Server.batch
      & info [ "batch" ] ~docv:"N" ~doc:"Requests read per scheduler cycle")
  in
  let headroom_arg =
    Arg.(
      value & opt (some int) None
      & info [ "headroom" ] ~docv:"N"
          ~doc:
            "Admission bound for deadline-bearing request classes \
             (default: the queue capacity — no early shedding)")
  in
  let journal_root_arg =
    Arg.(
      value & opt (some string) None
      & info [ "journal-root" ] ~docv:"DIR"
          ~doc:
            "Durable mode: per-tenant journal directories under \
             $(docv); a restarted server recovers every tenant — \
             including evolutions interrupted mid-run — byte-identically")
  in
  let mode_term =
    let gen_script =
      Arg.(
        value & flag
        & info [ "gen-script" ]
            ~doc:"Print a deterministic request script and exit")
    in
    let oracle =
      Arg.(
        value & flag
        & info [ "oracle" ]
            ~doc:
              "Read a script on stdin and print the expected response \
               lines (computed without the server) — the golden side of \
               the CI smoke diff")
    in
    let replay =
      Arg.(
        value & opt (some file) None
        & info [ "replay" ] ~docv:"SCRIPT"
            ~doc:"Push $(docv) through a fresh server and print the \
                  latency/shed report")
    in
    Term.(
      const (fun g o r ->
          match (g, o, r) with
          | true, _, _ -> `Gen_script
          | _, true, _ -> `Oracle
          | _, _, Some f -> `Replay f
          | _ -> `Pipe)
      $ gen_script $ oracle $ replay)
  in
  let tenants_arg =
    Arg.(
      value & opt int 16
      & info [ "tenants" ] ~docv:"N" ~doc:"Tenants in a generated script")
  in
  let requests_arg =
    Arg.(
      value & opt int 128
      & info [ "requests" ] ~docv:"N"
          ~doc:"Mixed requests in a generated script (after registration)")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Script generation seed")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve many evolving choreographies at once: newline-delimited \
          JSON requests (register/evolve/query/migrate-status/stats) on \
          stdin, one response per line on stdout, scheduled in cycles \
          over the domain pool with per-class budgets and deterministic \
          load shedding")
    Term.(
      const serve_run $ obs_term $ shards_arg $ queue_arg $ batch_arg
      $ headroom_arg $ journal_root_arg $ mode_term $ tenants_arg
      $ requests_arg $ seed_arg)

(* ------------------------------- main ------------------------------ *)

let () =
  let info =
    Cmd.info "chorev" ~version:"1.0.0"
      ~doc:
        "Controlled evolution of process choreographies (Rinderle, \
         Wombacher & Reichert, ICDE 2006)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            demo_cmd; check_cmd; experiments_cmd; dot_cmd; xml_cmd; run_cmd;
            sim_cmd; global_cmd; synth_cmd; public_cmd; consistent_cmd;
            save_cmd; evolve_cmd; resume_cmd; migrate_cmd; serve_cmd;
          ]))
